//! The [`MetricsRegistry`] aggregation sink and its exposition encoders.
//!
//! Unlike the streaming sinks ([`crate::JsonLinesSink`],
//! [`crate::ChromeTraceSink`]) which preserve individual events, the
//! registry *aggregates in place* so a long-running server can answer
//! "what are the p99 latencies right now" without unbounded memory:
//!
//! * **counters** — one `AtomicU64` per name, relaxed `fetch_add`;
//! * **gauges** — one `AtomicU64` per name, relaxed `store`;
//! * **histograms** — 65 fixed log₂ buckets of `AtomicU64` per name
//!   (bucket 0 holds the value 0, bucket *i* ≥ 1 holds values in
//!   `[2^(i-1), 2^i - 1]`), plus sum/min/max atomics. Quantiles are
//!   estimated from the bucket counts and are exact to within one
//!   bucket (a factor of 2) by construction;
//! * **spans** — completed-span tallies, one `AtomicU64` per name.
//!
//! The hot path is lock-free after a name's first emission: names are
//! sharded by hash across 8 shards, each a `RwLock<HashMap>` taken for
//! *read* to find the interned atomic cell; the write lock is only taken
//! once per name process-wide to insert the cell. This keeps the
//! registry inside the ≤ 5 % overhead budget enforced by the
//! `observability` bench alongside [`crate::NoopSink`].
//!
//! Reads go through [`MetricsRegistry::snapshot`], which clones every
//! cell into a [`MetricsSnapshot`]. A histogram's total count is derived
//! from its bucket counts so count and buckets always agree within one
//! snapshot; once emitters are quiescent (e.g. all requests answered), a
//! snapshot is exact. Snapshots render to Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]) or JSON
//! ([`MetricsSnapshot::to_json`]) for the `rasc-serve` admin endpoint.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::sink::EventSink;

/// Number of name shards (power of two).
const SHARDS: usize = 8;

/// Number of log₂ histogram buckets: bucket 0 for the value 0, buckets
/// 1..=64 for each power-of-two range up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log₂ bucket index holding `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` boundary).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

#[derive(Debug)]
struct HistoCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistoCell {
    fn new() -> HistoCell {
        HistoCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct Shard {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    spans: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<&'static str, Arc<HistoCell>>>,
}

/// Finds (or interns) the cell for `name`: an uncontended read lock on
/// the steady state, a write lock only on a name's first emission. A
/// poisoned lock (panic mid-insert elsewhere) drops the event rather
/// than compounding the failure.
fn cell<T>(
    map: &RwLock<HashMap<&'static str, Arc<T>>>,
    name: &'static str,
    new: impl FnOnce() -> T,
) -> Option<Arc<T>> {
    if let Ok(m) = map.read() {
        if let Some(c) = m.get(name) {
            return Some(Arc::clone(c));
        }
    }
    match map.write() {
        Ok(mut m) => Some(Arc::clone(m.entry(name).or_insert_with(|| Arc::new(new())))),
        Err(_) => None,
    }
}

/// An aggregating [`EventSink`]: lock-free atomic counters, gauges, and
/// log₂-bucket histograms, snapshot-readable at any time.
///
/// Designed to run for the lifetime of a server process, typically as a
/// [`crate::Fanout`] peer next to a trace sink:
///
/// ```
/// use std::sync::Arc;
/// use rasc_obs::{self as obs, MetricsRegistry};
///
/// let reg = Arc::new(MetricsRegistry::new());
/// obs::scoped(reg.clone(), || {
///     obs::counter("serve.requests", 2);
///     obs::histogram("serve.request.micros", 130);
///     obs::gauge("serve.inflight", 1);
/// });
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters.get("serve.requests"), Some(&2));
/// assert!(snap.to_prometheus().contains("serve_requests_total 2"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    shards: [Shard; SHARDS],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn shard(&self, name: &str) -> &Shard {
        // FNV-1a over the name bytes; names are few and static, so any
        // spreading hash is fine.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// A point-in-time copy of every metric. Each cell is read
    /// atomically and a histogram's count is derived from its bucket
    /// counts, so every individual metric is internally consistent;
    /// concurrent emitters may land between cells of *different*
    /// metrics. Quiescent emitters ⇒ exact snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            if let Ok(m) = shard.counters.read() {
                for (&name, c) in m.iter() {
                    snap.counters
                        .insert(name.to_owned(), c.load(Ordering::Relaxed));
                }
            }
            if let Ok(m) = shard.gauges.read() {
                for (&name, c) in m.iter() {
                    snap.gauges
                        .insert(name.to_owned(), c.load(Ordering::Relaxed));
                }
            }
            if let Ok(m) = shard.spans.read() {
                for (&name, c) in m.iter() {
                    snap.spans
                        .insert(name.to_owned(), c.load(Ordering::Relaxed));
                }
            }
            if let Ok(m) = shard.histograms.read() {
                for (&name, h) in m.iter() {
                    let buckets: Vec<u64> = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    snap.histograms.insert(
                        name.to_owned(),
                        HistogramSnapshot {
                            buckets,
                            sum: h.sum.load(Ordering::Relaxed),
                            min: h.min.load(Ordering::Relaxed),
                            max: h.max.load(Ordering::Relaxed),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Shorthand: snapshot and render Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Shorthand: snapshot and render the JSON stats document.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

impl EventSink for MetricsRegistry {
    fn span_begin(&self, _name: &'static str) {}

    fn span_end(&self, name: &'static str) {
        if let Some(c) = cell(&self.shard(name).spans, name, || AtomicU64::new(0)) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        if let Some(c) = cell(&self.shard(name).counters, name, || AtomicU64::new(0)) {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    fn histogram(&self, name: &'static str, value: u64) {
        if let Some(h) = cell(&self.shard(name).histograms, name, HistoCell::new) {
            h.record(value);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        if let Some(c) = cell(&self.shard(name).gauges, name, || AtomicU64::new(0)) {
            c.store(value, Ordering::Relaxed);
        }
    }
}

/// A consistent read of one histogram: per-bucket counts plus
/// sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts, one per log₂ bucket.
    pub buckets: Vec<u64>,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total number of samples (sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper
    /// bound of the bucket containing the rank-⌈q·n⌉ sample. The true
    /// quantile lies in the same bucket, so the estimate is within one
    /// log₂ bucket (a factor of 2) of exact. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]'s contents, ready to
/// encode. Maps are keyed by the original dotted metric names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges (last write wins).
    pub gauges: BTreeMap<String, u64>,
    /// Completed-span tallies.
    pub spans: BTreeMap<String, u64>,
    /// Log₂-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Maps a dotted metric name onto the Prometheus name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and other punctuation become `_`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters as `<name>_total`, spans as
    /// `<name>_spans_total`, gauges verbatim, histograms as cumulative
    /// `_bucket{le="…"}` series (log₂ boundaries up to the last occupied
    /// bucket, then `+Inf`) plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n}_total counter");
            let _ = writeln!(out, "{n}_total {v}");
        }
        for (name, v) in &self.spans {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n}_spans_total counter");
            let _ = writeln!(out, "{n}_spans_total {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let last = h
                .buckets
                .iter()
                .rposition(|&c| c != 0)
                .unwrap_or(0)
                .min(HISTOGRAM_BUCKETS - 1);
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count());
        }
        out
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// `spans`, and `histograms` members; each histogram reports count,
    /// sum, min, max, and the p50/p90/p99 estimates.
    pub fn to_json(&self) -> String {
        fn scalar_map(out: &mut String, key: &str, map: &BTreeMap<String, u64>) {
            let _ = write!(out, "\"{key}\":{{");
            for (i, (name, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(name));
            }
            out.push('}');
        }
        let mut out = String::from("{");
        scalar_map(&mut out, "counters", &self.counters);
        out.push(',');
        scalar_map(&mut out, "gauges", &self.gauges);
        out.push(',');
        scalar_map(&mut out, "spans", &self.spans);
        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let count = h.count();
            let min = if count == 0 { 0 } else { h.min };
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{count},\"sum\":{},\"min\":{min},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_escape(name),
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99)
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
        assert_eq!(bucket_upper_bound(0) + 1, bucket_lower_bound(1));
        assert_eq!(bucket_upper_bound(5) + 1, bucket_lower_bound(6));
    }

    #[test]
    fn registry_aggregates_all_event_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c", 2);
        reg.counter("c", 3);
        reg.gauge("g", 7);
        reg.gauge("g", 4);
        reg.span_begin("s");
        reg.span_end("s");
        reg.histogram("h", 0);
        reg.histogram("h", 5);
        reg.histogram("h", 1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("c"), Some(&5));
        assert_eq!(snap.gauges.get("g"), Some(&4));
        assert_eq!(snap.spans.get("s"), Some(&1));
        let h = snap
            .histograms
            .get("h")
            .cloned()
            .unwrap_or(HistogramSnapshot {
                buckets: Vec::new(),
                sum: 0,
                min: 0,
                max: 0,
            });
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum, 1005);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[bucket_index(0)], 1);
        assert_eq!(h.buckets[bucket_index(5)], 1);
        assert_eq!(h.buckets[bucket_index(1000)], 1);
    }

    #[test]
    fn quantiles_are_within_one_bucket() {
        let reg = MetricsRegistry::new();
        for v in 1..=100u64 {
            reg.histogram("h", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["h"];
        // Exact p50 is 50 (bucket 6: 32..=63); estimate must land in it.
        let p50 = h.quantile(0.50);
        assert_eq!(bucket_index(p50), bucket_index(50), "p50 {p50}");
        // p99 is 99 (bucket 7: 64..=127); max-clamped to 100.
        let p99 = h.quantile(0.99);
        assert_eq!(bucket_index(p99), bucket_index(99), "p99 {p99}");
        assert!(p99 <= h.max);
        assert_eq!(h.quantile(0.0), bucket_upper_bound(bucket_index(1)));
        assert_eq!(h.quantile(1.0).max(h.max), h.max);
    }

    #[test]
    fn prometheus_rendering_is_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests", 41);
        reg.counter("serve.requests", 1);
        reg.gauge("serve.inflight", 3);
        reg.histogram("serve.request.micros", 100);
        reg.histogram("serve.request.micros", 200);
        let text = reg.render_prometheus();
        assert!(
            text.contains("# TYPE serve_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("serve_requests_total 42"), "{text}");
        assert!(text.contains("# TYPE serve_inflight gauge"), "{text}");
        assert!(text.contains("serve_inflight 3"), "{text}");
        assert!(
            text.contains("serve_request_micros_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("serve_request_micros_sum 300"), "{text}");
        assert!(text.contains("serve_request_micros_count 2"), "{text}");
        // Bucket series is cumulative and ends at the +Inf total.
        assert!(text.contains("le=\"127\"} 1"), "{text}");
        assert!(text.contains("le=\"255\"} 2"), "{text}");
    }

    #[test]
    fn json_rendering_reports_quantiles() {
        let reg = MetricsRegistry::new();
        reg.counter("c", 1);
        reg.histogram("h", 10);
        let json = reg.render_json();
        assert!(json.contains("\"counters\":{\"c\":1}"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("serve.request.micros"), "serve_request_micros");
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name("a-b c9"), "a_b_c9");
    }
}
