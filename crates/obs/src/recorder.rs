//! The in-memory [`Recorder`] sink.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::sink::EventSink;

/// Aggregate of one histogram's samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, HistogramSummary>,
    /// Completed spans per name.
    spans: BTreeMap<&'static str, u64>,
    /// Currently open span names (a stack).
    open: Vec<&'static str>,
    /// Deepest nesting observed.
    max_depth: usize,
}

/// An in-memory sink aggregating counters, histogram summaries, and span
/// tallies — the workhorse of the reconciliation property tests and the
/// CLI's `--profile` report.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    fn with_inner<R: Default>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        // A poisoned mutex means a panic mid-update on another thread;
        // observability must never compound that, so report defaults.
        match self.inner.lock() {
            Ok(mut guard) => f(&mut guard),
            Err(_) => R::default(),
        }
    }

    /// The accumulated value of counter `name` (0 when never emitted).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.with_inner(|i| i.counters.get(name).copied().unwrap_or(0))
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.with_inner(|i| {
            i.counters
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect()
        })
    }

    /// The last value set for gauge `name`, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.with_inner(|i| i.gauges.get(name).copied())
    }

    /// The summary of histogram `name`, if any samples were recorded.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.with_inner(|i| i.histograms.get(name).copied())
    }

    /// Number of *completed* spans named `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.with_inner(|i| i.spans.get(name).copied().unwrap_or(0))
    }

    /// Number of spans currently open (nonzero only while recording).
    pub fn open_span_depth(&self) -> usize {
        self.with_inner(|i| i.open.len())
    }

    /// The deepest span nesting observed.
    pub fn max_span_depth(&self) -> usize {
        self.with_inner(|i| i.max_depth)
    }

    /// A human-readable multi-line report (used by `rasc … --profile`).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        self.with_inner(|i| {
            let mut out = String::new();
            if !i.counters.is_empty() {
                let _ = writeln!(out, "counters:");
                for (name, v) in &i.counters {
                    let _ = writeln!(out, "  {name:<40} {v}");
                }
            }
            if !i.spans.is_empty() {
                let _ = writeln!(out, "spans (completed):");
                for (name, v) in &i.spans {
                    let _ = writeln!(out, "  {name:<40} {v}");
                }
            }
            if !i.histograms.is_empty() {
                let _ = writeln!(out, "histograms:");
                for (name, h) in &i.histograms {
                    let _ = writeln!(
                        out,
                        "  {name:<40} n={} min={} max={} sum={}",
                        h.count, h.min, h.max, h.sum
                    );
                }
            }
            out
        })
    }
}

impl EventSink for Recorder {
    fn span_begin(&self, name: &'static str) {
        self.with_inner(|i| {
            i.open.push(name);
            i.max_depth = i.max_depth.max(i.open.len());
        });
    }

    fn span_end(&self, name: &'static str) {
        self.with_inner(|i| {
            if let Some(pos) = i.open.iter().rposition(|&n| n == name) {
                i.open.remove(pos);
            }
            *i.spans.entry(name).or_insert(0) += 1;
        });
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.with_inner(|i| {
            *i.counters.entry(name).or_insert(0) += delta;
        });
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.with_inner(|i| {
            i.gauges.insert(name, value);
        });
    }

    fn histogram(&self, name: &'static str, value: u64) {
        self.with_inner(|i| {
            let h = i.histograms.entry(name).or_insert(HistogramSummary {
                count: 0,
                min: u64::MAX,
                max: 0,
                sum: 0,
            });
            h.count += 1;
            h.min = h.min.min(value);
            h.max = h.max.max(value);
            h.sum += value;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_counters_histograms_and_spans() {
        let rec = Recorder::new();
        rec.counter("a", 2);
        rec.counter("a", 3);
        rec.histogram("h", 10);
        rec.histogram("h", 4);
        rec.span_begin("s");
        rec.span_begin("t");
        rec.span_end("t");
        rec.span_end("s");
        assert_eq!(rec.counter_value("a"), 5);
        assert_eq!(
            rec.histogram_summary("h"),
            Some(HistogramSummary {
                count: 2,
                min: 4,
                max: 10,
                sum: 14
            })
        );
        assert_eq!(rec.span_count("s"), 1);
        assert_eq!(rec.max_span_depth(), 2);
        assert_eq!(rec.open_span_depth(), 0);
        let report = rec.report();
        assert!(report.contains("counters:"), "{report}");
        assert!(report.contains('a'), "{report}");
    }
}
