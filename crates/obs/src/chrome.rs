//! Chrome trace-event export ([`ChromeTraceSink`]).
//!
//! Produces the JSON object format understood by Perfetto and
//! `chrome://tracing`: `{"traceEvents":[{"name","ph","ts","pid","tid",…}]}`.
//! Spans become duration `B`/`E` pairs, counters become `C` events whose
//! argument carries the running total.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::sink::EventSink;

/// A source of microsecond timestamps for trace events.
///
/// The default ([`WallClock`]) reads monotonic wall time; tests inject a
/// deterministic ticker so golden traces are reproducible.
pub trait TimeSource: Send + Sync + std::fmt::Debug {
    /// Microseconds since an arbitrary fixed origin; must not decrease.
    fn now_micros(&self) -> u64;
}

/// Monotonic wall time, measured from sink construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl TimeSource for WallClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic time source: every call advances by one microsecond.
/// Used by the golden trace test.
#[derive(Debug, Default)]
pub struct TickClock {
    ticks: AtomicU64,
}

impl TickClock {
    /// A ticker starting at 0.
    pub fn new() -> TickClock {
        TickClock::default()
    }
}

impl TimeSource for TickClock {
    fn now_micros(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct Event {
    name: &'static str,
    /// Trace-event phase: `'B'`, `'E'`, or `'C'`.
    ph: char,
    ts: u64,
    /// For `C` events, the counter's running total.
    value: Option<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    /// Running totals backing the `C` events.
    totals: std::collections::BTreeMap<&'static str, u64>,
}

/// A sink accumulating Chrome trace events in memory; render the
/// finished trace with [`ChromeTraceSink::render`] and load the file in
/// [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
///
/// Arm [`ChromeTraceSink::save_on_drop`] to guarantee a complete,
/// Perfetto-loadable file even when the session panics or is cancelled
/// mid-trace: the destructor renders whatever was recorded (the JSON
/// array is always closed because rendering happens from memory, never
/// by incremental appends).
#[derive(Debug)]
pub struct ChromeTraceSink {
    clock: Arc<dyn TimeSource>,
    inner: Mutex<Inner>,
    /// When set, the destructor writes the rendered trace here unless
    /// [`ChromeTraceSink::save`] already wrote this run's trace.
    drop_path: Mutex<Option<std::path::PathBuf>>,
}

impl Default for ChromeTraceSink {
    fn default() -> ChromeTraceSink {
        ChromeTraceSink::new()
    }
}

impl ChromeTraceSink {
    /// A sink timestamping events with monotonic wall time.
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink::with_time_source(Arc::new(WallClock {
            origin: Instant::now(),
        }))
    }

    /// A sink using the given time source (deterministic tests pass a
    /// [`TickClock`]).
    pub fn with_time_source(clock: Arc<dyn TimeSource>) -> ChromeTraceSink {
        ChromeTraceSink {
            clock,
            inner: Mutex::new(Inner::default()),
            drop_path: Mutex::new(None),
        }
    }

    /// Arms the sink to write the rendered trace to `path` when it is
    /// dropped, unless an explicit [`ChromeTraceSink::save`] happens
    /// first. This is the crash-safety net for `--trace`: a panicking or
    /// cancelled session still leaves a loadable trace behind.
    pub fn save_on_drop(&self, path: std::path::PathBuf) {
        if let Ok(mut slot) = self.drop_path.lock() {
            *slot = Some(path);
        }
    }

    fn push(&self, name: &'static str, ph: char, value: Option<u64>) {
        let ts = self.clock.now_micros();
        if let Ok(mut inner) = self.inner.lock() {
            let value = match value {
                Some(delta) => {
                    let total = inner.totals.entry(name).or_insert(0);
                    *total += delta;
                    Some(*total)
                }
                None => None,
            };
            inner.events.push(Event {
                name,
                ph,
                ts,
                value,
            });
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().map(|i| i.events.len()).unwrap_or(0)
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the accumulated events as a Chrome trace-event JSON
    /// object. All events carry `pid` 1 and `tid` 1: the solver emits
    /// from the instrumented thread only, and a constant pair keeps the
    /// trace stable for golden tests.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        if let Ok(inner) = self.inner.lock() {
            for (i, ev) in inner.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":1",
                    escape(ev.name),
                    ev.ph,
                    ev.ts
                );
                if let Some(v) = ev.value {
                    let _ = write!(out, ",\"args\":{{\"value\":{v}}}");
                } else if ev.ph == 'B' {
                    out.push_str(",\"args\":{}");
                }
                out.push('}');
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders and writes the trace to `path`. Disarms a pending
    /// [`ChromeTraceSink::save_on_drop`] so the trace is not rewritten
    /// (possibly after further events) when the sink drops.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Ok(mut slot) = self.drop_path.lock() {
            *slot = None;
        }
        std::fs::write(path, self.render())
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        let path = match self.drop_path.lock() {
            Ok(mut slot) => slot.take(),
            Err(mut poisoned) => poisoned.get_mut().take(),
        };
        if let Some(path) = path {
            // Destructors must not panic and may run during unwinding;
            // a failed write is silently dropped (best effort).
            let _ = std::fs::write(path, self.render());
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl EventSink for ChromeTraceSink {
    fn span_begin(&self, name: &'static str) {
        self.push(name, 'B', None);
    }

    fn span_end(&self, name: &'static str) {
        self.push(name, 'E', None);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.push(name, 'C', Some(delta));
    }

    fn histogram(&self, name: &'static str, value: u64) {
        // Chrome's counter track is the closest fit: plot each sample.
        let ts = self.clock.now_micros();
        if let Ok(mut inner) = self.inner.lock() {
            inner.events.push(Event {
                name,
                ph: 'C',
                ts,
                value: Some(value),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_balanced_spans_and_running_counter_totals() {
        let sink = ChromeTraceSink::with_time_source(Arc::new(TickClock::new()));
        sink.span_begin("solve");
        sink.counter("facts", 2);
        sink.counter("facts", 3);
        sink.span_end("solve");
        let json = sink.render();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(
            json.contains("\"name\":\"solve\",\"ph\":\"B\",\"ts\":0"),
            "{json}"
        );
        assert!(json.contains("\"ph\":\"E\",\"ts\":3"), "{json}");
        // Counter totals accumulate: 2 then 5.
        assert!(json.contains("\"args\":{\"value\":2}"), "{json}");
        assert!(json.contains("\"args\":{\"value\":5}"), "{json}");
        assert!(json.contains("\"pid\":1"), "{json}");
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn escapes_are_applied() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }

    #[test]
    fn armed_sink_writes_trace_on_drop_even_with_open_spans() {
        let dir = std::env::temp_dir().join(format!("rasc-chrome-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dropped.json");
        let _ = std::fs::remove_file(&path);
        {
            let sink = ChromeTraceSink::with_time_source(Arc::new(TickClock::new()));
            sink.save_on_drop(path.clone());
            sink.span_begin("interrupted");
            sink.counter("facts", 1);
            // Dropped with the span still open (a cancelled session).
        }
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{json}");
        assert!(json.contains("\"name\":\"interrupted\""), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explicit_save_disarms_the_drop_write() {
        let dir = std::env::temp_dir().join(format!("rasc-chrome-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let saved = dir.join("saved.json");
        let armed = dir.join("armed.json");
        let _ = std::fs::remove_file(&armed);
        {
            let sink = ChromeTraceSink::with_time_source(Arc::new(TickClock::new()));
            sink.save_on_drop(armed.clone());
            sink.counter("facts", 1);
            sink.save(&saved).unwrap();
        }
        assert!(saved.exists());
        assert!(!armed.exists(), "drop must not rewrite after explicit save");
        let _ = std::fs::remove_file(&saved);
    }
}
