//! Property test: pretty-printing a MiniImp AST and re-parsing it yields
//! the same AST, for arbitrary generated programs.

use rasc_cfgir::{Block, Cfg, Program, Stmt};
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng, Unshrunk};

/// A random identifier matching `[a-z][a-z0-9_]{0,6}`, never a keyword.
fn ident(rng: &mut Rng) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let mut s = String::new();
        s.push(HEAD[rng.gen_range(0..HEAD.len())] as char);
        for _ in 0..rng.gen_range(0..7) {
            s.push(TAIL[rng.gen_range(0..TAIL.len())] as char);
        }
        if !matches!(
            s.as_str(),
            "fn" | "if" | "else" | "while" | "skip" | "return" | "event"
        ) {
            return s;
        }
    }
}

fn arb_stmt(rng: &mut Rng, depth: usize) -> Stmt {
    let leaf = depth == 0 || rng.gen_bool(0.5);
    if leaf {
        return match rng.gen_range(0..4) {
            0 => Stmt::Skip,
            1 => Stmt::Return,
            2 => {
                let name = ident(rng);
                let args = (0..rng.gen_range(0..3)).map(|_| ident(rng)).collect();
                Stmt::Event { name, args }
            }
            _ => Stmt::Call(format!("f{}", rng.gen_range(0..3))),
        };
    }
    let block = |rng: &mut Rng| {
        let mut b = Block::new();
        for _ in 0..rng.gen_range(0..4) {
            b.push(arb_stmt(rng, depth - 1));
        }
        b
    };
    if rng.gen_bool(0.5) {
        let t = block(rng);
        let e = block(rng);
        Stmt::If(t, e)
    } else {
        Stmt::While(block(rng))
    }
}

fn arb_program(rng: &mut Rng) -> Program {
    let mut p = Program::new();
    // Functions f0..f2 always exist so calls resolve.
    let n_funs = rng.gen_range(1..4);
    for i in 0..n_funs.max(3) {
        let mut b = Block::new();
        if i < n_funs {
            for _ in 0..rng.gen_range(0..6) {
                b.push(arb_stmt(rng, 3));
            }
        }
        p.fun(&format!("f{i}"), b);
    }
    let mut main_body = Block::new();
    main_body.push(Stmt::Call("f0".to_owned()));
    p.fun("main", main_body);
    p
}

#[test]
fn pretty_parse_round_trip() {
    forall(
        "pretty_parse_round_trip",
        Config::cases(128),
        |rng| Unshrunk(arb_program(rng)),
        |Unshrunk(p)| {
            let printed = p.to_string();
            let reparsed = Program::parse(&printed)
                .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
            prop_assert_eq!(p, &reparsed, "printed:\n{printed}");
            Ok(())
        },
    );
}

#[test]
fn generated_programs_build_cfgs() {
    forall(
        "generated_programs_build_cfgs",
        Config::cases(128),
        |rng| Unshrunk(arb_program(rng)),
        |Unshrunk(p)| {
            let cfg = Cfg::build(p).expect("calls resolve by construction");
            prop_assert!(cfg.entry("main").is_ok());
            // Structural sanity: every edge endpoint is a valid node, every
            // call site references declared functions.
            for (from, to, _) in cfg.edges() {
                prop_assert!(from.index() < cfg.num_nodes());
                prop_assert!(to.index() < cfg.num_nodes());
            }
            for site in cfg.call_sites() {
                prop_assert!(site.callee.index() < cfg.functions().len());
            }
            Ok(())
        },
    );
}
