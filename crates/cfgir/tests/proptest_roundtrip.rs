//! Property test: pretty-printing a MiniImp AST and re-parsing it yields
//! the same AST, for arbitrary generated programs.

use proptest::prelude::*;
use rasc_cfgir::{Block, Cfg, Program, Stmt};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "fn" | "if" | "else" | "while" | "skip" | "return" | "event"
        )
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Skip),
        Just(Stmt::Return),
        (ident(), proptest::collection::vec(ident(), 0..3))
            .prop_map(|(name, args)| Stmt::Event { name, args }),
        (0usize..3).prop_map(|i| Stmt::Call(format!("f{i}"))),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        let block =
            proptest::collection::vec(inner.clone().prop_map(|stmt| (None::<String>, stmt)), 0..4)
                .prop_map(|stmts| {
                    let mut b = Block::new();
                    for (_, s) in stmts {
                        b.push(s);
                    }
                    b
                });
        prop_oneof![
            (block.clone(), block.clone()).prop_map(|(t, e)| Stmt::If(t, e)),
            block.prop_map(Stmt::While),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(proptest::collection::vec(arb_stmt(), 0..6), 1..4).prop_map(
        |bodies| {
            let mut p = Program::new();
            // Functions f0..f2 always exist so calls resolve; the first is
            // also duplicated as main.
            for (i, stmts) in bodies.iter().enumerate() {
                let mut b = Block::new();
                for s in stmts {
                    b.push(s.clone());
                }
                p.fun(&format!("f{i}"), b);
            }
            for i in bodies.len()..3 {
                p.fun(&format!("f{i}"), Block::new());
            }
            let mut main_body = Block::new();
            main_body.push(Stmt::Call("f0".to_owned()));
            p.fun("main", main_body);
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_parse_round_trip(p in arb_program()) {
        let printed = p.to_string();
        let reparsed = Program::parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(p, reparsed, "printed:\n{}", printed);
    }

    #[test]
    fn generated_programs_build_cfgs(p in arb_program()) {
        let cfg = Cfg::build(&p).expect("calls resolve by construction");
        prop_assert!(cfg.entry("main").is_ok());
        // Structural sanity: every edge endpoint is a valid node, every
        // call site references declared functions.
        for (from, to, _) in cfg.edges() {
            prop_assert!(from.index() < cfg.num_nodes());
            prop_assert!(to.index() < cfg.num_nodes());
        }
        for site in cfg.call_sites() {
            prop_assert!(site.callee.index() < cfg.functions().len());
        }
    }
}
