//! Error types for MiniImp parsing and CFG construction.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CfgError>;

/// Errors from MiniImp parsing or CFG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// Malformed source text.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// A call targets a function that is not defined.
    UnknownFunction(String),
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A statement label is used twice.
    DuplicateLabel(String),
    /// The program has no `main` (or configured entry) function.
    MissingEntry(String),
    /// Blocks nest deeper than the supported limit.
    DepthExceeded {
        /// The configured nesting limit.
        limit: usize,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Parse { message, line } => write!(f, "parse error at line {line}: {message}"),
            CfgError::UnknownFunction(name) => write!(f, "call to undefined function `{name}`"),
            CfgError::DuplicateFunction(name) => write!(f, "function `{name}` defined twice"),
            CfgError::DuplicateLabel(name) => write!(f, "label `{name}` used twice"),
            CfgError::MissingEntry(name) => write!(f, "program has no entry function `{name}`"),
            CfgError::DepthExceeded { limit } => {
                write!(
                    f,
                    "blocks nest deeper than the supported limit of {limit} levels"
                )
            }
        }
    }
}

impl std::error::Error for CfgError {}
