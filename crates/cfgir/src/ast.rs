//! MiniImp abstract syntax.

use crate::error::Result;
use crate::parser;

/// A MiniImp statement.
///
/// Statements may carry an optional label (`s1: …`), recorded on the
/// enclosing [`Block`]'s entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A no-op.
    Skip,
    /// A property-relevant event, optionally with a parameter argument
    /// (`event open(fd1);`).
    Event {
        /// The event (annotation alphabet symbol) name.
        name: String,
        /// Optional parameter-value labels.
        args: Vec<String>,
    },
    /// A direct call to a named function.
    Call(String),
    /// Nondeterministic branch `if (*) { … } else { … }` (the else block
    /// may be empty).
    If(Block, Block),
    /// Nondeterministic loop `while (*) { … }`.
    While(Block),
    /// Early return from the enclosing function.
    Return,
}

/// A labeled statement within a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeled {
    /// Optional statement label (`s1`).
    pub label: Option<String>,
    /// The statement proper.
    pub stmt: Stmt,
}

/// A sequence of labeled statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Labeled>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// Appends an unlabeled statement (builder style).
    pub fn push(&mut self, stmt: Stmt) -> &mut Block {
        self.stmts.push(Labeled { label: None, stmt });
        self
    }

    /// Appends a labeled statement (builder style).
    pub fn push_labeled(&mut self, label: &str, stmt: Stmt) -> &mut Block {
        self.stmts.push(Labeled {
            label: Some(label.to_owned()),
            stmt,
        });
        self
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDef {
    /// The function's name.
    pub name: String,
    /// The function body.
    pub body: Block,
}

/// A MiniImp program: a list of function definitions.
///
/// Whole-program analyses start from the function named `main` by
/// convention (see [`crate::Cfg::build`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The function definitions in source order.
    pub funs: Vec<FunDef>,
}

impl Program {
    /// An empty program (builder style; see also [`Program::parse`]).
    pub fn new() -> Program {
        Program::default()
    }

    /// Parses MiniImp source text.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CfgError::Parse`] on malformed syntax.
    pub fn parse(src: &str) -> Result<Program> {
        parser::parse(src)
    }

    /// Adds a function definition (builder style).
    pub fn fun(&mut self, name: &str, body: Block) -> &mut Program {
        self.funs.push(FunDef {
            name: name.to_owned(),
            body,
        });
        self
    }

    /// Looks up a function by name.
    pub fn find(&self, name: &str) -> Option<&FunDef> {
        self.funs.iter().find(|f| f.name == name)
    }

    /// Total number of statements (a rough program-size measure used by
    /// the benchmark harness to mimic the paper's lines-of-code column).
    pub fn num_stmts(&self) -> usize {
        fn block(b: &Block) -> usize {
            b.stmts
                .iter()
                .map(|l| match &l.stmt {
                    Stmt::If(t, e) => 1 + block(t) + block(e),
                    Stmt::While(body) => 1 + block(body),
                    _ => 1,
                })
                .sum()
        }
        self.funs.iter().map(|f| block(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_size() {
        let mut p = Program::new();
        let mut body = Block::new();
        body.push(Stmt::Skip).push_labeled(
            "s1",
            Stmt::Event {
                name: "execl".to_owned(),
                args: vec![],
            },
        );
        let mut inner = Block::new();
        inner.push(Stmt::Call("main".to_owned()));
        body.push(Stmt::While(inner));
        p.fun("main", body);
        assert_eq!(p.num_stmts(), 4);
        assert!(p.find("main").is_some());
        assert!(p.find("nope").is_none());
    }
}
