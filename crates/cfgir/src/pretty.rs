//! Pretty-printing MiniImp programs back to surface syntax.

use std::fmt;

use crate::ast::{Block, Program, Stmt};

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fun in &self.funs {
            writeln!(f, "fn {}() {{", fun.name)?;
            write_block(f, &fun.body, 1)?;
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, b: &Block, depth: usize) -> fmt::Result {
    let pad = "    ".repeat(depth);
    for labeled in &b.stmts {
        let label = labeled
            .label
            .as_ref()
            .map(|l| format!("{l}: "))
            .unwrap_or_default();
        match &labeled.stmt {
            Stmt::Skip => writeln!(f, "{pad}{label}skip;")?,
            Stmt::Return => writeln!(f, "{pad}{label}return;")?,
            Stmt::Event { name, args } => {
                if args.is_empty() {
                    writeln!(f, "{pad}{label}event {name};")?;
                } else {
                    writeln!(f, "{pad}{label}event {name}({});", args.join(", "))?;
                }
            }
            Stmt::Call(name) => writeln!(f, "{pad}{label}{name}();")?,
            Stmt::If(t, e) => {
                writeln!(f, "{pad}{label}if (*) {{")?;
                write_block(f, t, depth + 1)?;
                if e.stmts.is_empty() {
                    writeln!(f, "{pad}}}")?;
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    write_block(f, e, depth + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
            }
            Stmt::While(body) => {
                writeln!(f, "{pad}{label}while (*) {{")?;
                write_block(f, body, depth + 1)?;
                writeln!(f, "{pad}}}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::Program;

    #[test]
    fn round_trips_through_the_parser() {
        let src = r#"
            fn helper() { event open(fd1); return; }
            fn main() {
                s1: event seteuid_zero;
                if (*) { helper(); } else { skip; }
                while (*) { event ping; }
            }
        "#;
        let p1 = Program::parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = Program::parse(&printed).unwrap();
        assert_eq!(p1, p2, "pretty-print → parse is the identity");
    }
}
