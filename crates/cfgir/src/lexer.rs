//! MiniImp lexer.

use crate::error::{CfgError, Result};

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Colon,
    Comma,
    Star,
}

pub(crate) fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                tokens.push((Tok::RBrace, line));
                i += 1;
            }
            '(' => {
                tokens.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                tokens.push((Tok::RParen, line));
                i += 1;
            }
            ';' => {
                tokens.push((Tok::Semi, line));
                i += 1;
            }
            ':' => {
                tokens.push((Tok::Colon, line));
                i += 1;
            }
            ',' => {
                tokens.push((Tok::Comma, line));
                i += 1;
            }
            '*' => {
                tokens.push((Tok::Star, line));
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push((Tok::Ident(src[start..i].to_owned()), line));
            }
            other => {
                return Err(CfgError::Parse {
                    message: format!("unexpected character {other:?}"),
                    line,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_tokens() {
        let toks = lex("fn main() { s1: event x; } // comment").unwrap();
        assert_eq!(toks[0].0, Tok::Ident("fn".to_owned()));
        assert!(toks.iter().any(|(t, _)| *t == Tok::Colon));
        assert!(!toks
            .iter()
            .any(|(t, _)| matches!(t, Tok::Ident(s) if s == "comment")));
    }

    #[test]
    fn tracks_lines_and_rejects_garbage() {
        let err = lex("fn\n$").unwrap_err();
        assert_eq!(
            err,
            CfgError::Parse {
                message: "unexpected character '$'".to_owned(),
                line: 2
            }
        );
    }
}
