//! MiniImp: a small imperative language and interprocedural CFG substrate.
//!
//! The paper's pushdown-model-checking (§6) and dataflow (§3.3) applications
//! operate on a program's control-flow graph with function calls and
//! returns. MiniImp provides exactly what those analyses need and nothing
//! more:
//!
//! * *events* — statements relevant to a property (`event seteuid_zero;`,
//!   `event open(fd1);`), which become annotated constraint edges;
//! * direct function calls with nondeterministic (abstracted) control flow
//!   (`if (*) { … } else { … }`, `while (*) { … }`);
//! * optional statement labels (`s1: event execl;`) so examples can refer
//!   to program points exactly as the paper does.
//!
//! # Example
//!
//! The paper's §6.3 example program:
//!
//! ```
//! use rasc_cfgir::{Cfg, Program};
//!
//! let src = r#"
//! fn main() {
//!     s1: event seteuid_zero;
//!     if (*) {
//!         s3: event seteuid_nonzero;
//!     } else {
//!         s4: skip;
//!     }
//!     s5: event execl;
//!     s6: skip;
//! }
//! "#;
//! let program = Program::parse(src)?;
//! let cfg = Cfg::build(&program)?;
//! assert_eq!(cfg.functions().len(), 1);
//! assert!(cfg.label_node("s6").is_some());
//! # Ok::<(), rasc_cfgir::CfgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod cfg;
mod error;
mod lexer;
mod parser;
mod pretty;

pub use ast::{Block, FunDef, Program, Stmt};

/// Converts an index to `u32`, panicking with a capacity message on
/// overflow. Centralizes the documented "fewer than 2^32 ids" invariant;
/// library code is otherwise free of `unwrap`/`expect` (enforced by the
/// `disallowed-methods` clippy gate in CI).
pub(crate) fn id_u32(n: usize, what: &str) -> u32 {
    match u32::try_from(n) {
        Ok(v) => v,
        Err(_) => panic!("capacity overflow: too many {what} (limit 2^32)"),
    }
}
pub use cfg::{CallSite, CallSiteId, Cfg, EdgeLabel, FuncCfg, FuncId, NodeId};
pub use error::{CfgError, Result};
