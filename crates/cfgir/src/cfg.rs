//! Interprocedural control-flow graphs.

use std::collections::HashMap;

use crate::ast::{Block, Program, Stmt};
use crate::error::{CfgError, Result};

/// A CFG node (program point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Builds a node id from a raw index. The caller must ensure the index
    /// is valid for the CFG it will be used with.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(crate::id_u32(index, "CFG nodes"))
    }

    /// The node's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A function within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub(crate) u32);

impl FuncId {
    /// The function's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A call site within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSiteId(pub(crate) u32);

impl CallSiteId {
    /// The call site's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The label of an intraprocedural CFG edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeLabel {
    /// An edge with no property-relevant effect.
    Plain,
    /// A property-relevant event (annotation symbol), possibly with
    /// parameter-value arguments.
    Event {
        /// The event name.
        name: String,
        /// Parameter-value labels (`open(fd1)` ⇒ `["fd1"]`).
        args: Vec<String>,
    },
}

/// A function's entry/exit nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCfg {
    /// The function's name.
    pub name: String,
    /// Entry program point.
    pub entry: NodeId,
    /// Exit program point (targets of `return` and fall-through).
    pub exit: NodeId,
}

/// A call site: an interprocedural edge pair.
///
/// Control flows `call_node → callee.entry` (call) and
/// `callee.exit → return_node` (return); the matching of the two is the
/// context-free property the constraint encoding models with per-site
/// constructors `o_i` (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// This site's id (the `i` of `o_i`).
    pub id: CallSiteId,
    /// The calling function.
    pub caller: FuncId,
    /// The program point at the call.
    pub call_node: NodeId,
    /// The program point after the call returns.
    pub return_node: NodeId,
    /// The called function.
    pub callee: FuncId,
}

/// An interprocedural control-flow graph built from a [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    funcs: Vec<FuncCfg>,
    node_func: Vec<FuncId>,
    edges: Vec<(NodeId, NodeId, EdgeLabel)>,
    call_sites: Vec<CallSite>,
    /// label → (node before the statement, node after it).
    labels: HashMap<String, (NodeId, NodeId)>,
}

impl Cfg {
    /// Builds the CFG of a program.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::UnknownFunction`] for calls to undefined
    /// functions, [`CfgError::DuplicateFunction`] and
    /// [`CfgError::DuplicateLabel`] for name collisions.
    pub fn build(program: &Program) -> Result<Cfg> {
        let mut fun_ids: HashMap<&str, FuncId> = HashMap::new();
        for (i, f) in program.funs.iter().enumerate() {
            if fun_ids.insert(&f.name, FuncId(i as u32)).is_some() {
                return Err(CfgError::DuplicateFunction(f.name.clone()));
            }
        }
        let mut b = Builder {
            fun_ids,
            cfg: Cfg {
                funcs: Vec::new(),
                node_func: Vec::new(),
                edges: Vec::new(),
                call_sites: Vec::new(),
                labels: HashMap::new(),
            },
            current: FuncId(0),
        };
        // Declare all functions first so entry/exit nodes exist for calls.
        for f in &program.funs {
            let fid = FuncId(b.cfg.funcs.len() as u32);
            b.current = fid;
            let entry = b.node(fid);
            let exit = b.node(fid);
            b.cfg.funcs.push(FuncCfg {
                name: f.name.clone(),
                entry,
                exit,
            });
        }
        for (i, f) in program.funs.iter().enumerate() {
            let fid = FuncId(i as u32);
            b.current = fid;
            let entry = b.cfg.funcs[i].entry;
            let exit = b.cfg.funcs[i].exit;
            let end = b.block(&f.body, entry, exit)?;
            b.cfg.edges.push((end, exit, EdgeLabel::Plain));
        }
        Ok(b.cfg)
    }

    /// The functions, indexable by [`FuncId`].
    pub fn functions(&self) -> &[FuncCfg] {
        &self.funcs
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<(FuncId, &FuncCfg)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The entry function, by name.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::MissingEntry`] if no such function exists.
    pub fn entry(&self, name: &str) -> Result<&FuncCfg> {
        self.function(name)
            .map(|(_, f)| f)
            .ok_or_else(|| CfgError::MissingEntry(name.to_owned()))
    }

    /// Number of program points.
    pub fn num_nodes(&self) -> usize {
        self.node_func.len()
    }

    /// The function containing a node.
    pub fn func_of(&self, n: NodeId) -> FuncId {
        self.node_func[n.index()]
    }

    /// All intraprocedural edges `(from, to, label)`.
    pub fn edges(&self) -> &[(NodeId, NodeId, EdgeLabel)] {
        &self.edges
    }

    /// All call sites.
    pub fn call_sites(&self) -> &[CallSite] {
        &self.call_sites
    }

    /// The program point *at* a labeled statement (before executing it).
    pub fn label_node(&self, label: &str) -> Option<NodeId> {
        self.labels.get(label).map(|&(before, _)| before)
    }

    /// The program point just *after* a labeled statement.
    pub fn label_after(&self, label: &str) -> Option<NodeId> {
        self.labels.get(label).map(|&(_, after)| after)
    }

    /// Renders the interprocedural CFG in Graphviz DOT format (one cluster
    /// per function, dashed call/return edges).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph cfg {\n  rankdir=TB;\n");
        for (fi, f) in self.funcs.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{fi} {{");
            let _ = writeln!(out, "    label=\"{}\";", f.name);
            for (ni, nf) in self.node_func.iter().enumerate() {
                if nf.index() == fi {
                    let _ = writeln!(out, "    n{ni} [shape=circle,label=\"{ni}\"];");
                }
            }
            let _ = writeln!(out, "  }}");
        }
        for (from, to, label) in &self.edges {
            match label {
                EdgeLabel::Plain => {
                    let _ = writeln!(out, "  n{} -> n{};", from.index(), to.index());
                }
                EdgeLabel::Event { name, args } => {
                    let rendered = if args.is_empty() {
                        name.clone()
                    } else {
                        format!("{name}({})", args.join(","))
                    };
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [label=\"{rendered}\"];",
                        from.index(),
                        to.index()
                    );
                }
            }
        }
        for site in &self.call_sites {
            let callee = &self.funcs[site.callee.index()];
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=dashed,label=\"call {}\"];",
                site.call_node.index(),
                callee.entry.index(),
                callee.name
            );
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=dashed,label=\"ret\"];",
                callee.exit.index(),
                site.return_node.index()
            );
        }
        out.push_str("}\n");
        out
    }
}

struct Builder<'a> {
    fun_ids: HashMap<&'a str, FuncId>,
    cfg: Cfg,
    current: FuncId,
}

impl Builder<'_> {
    fn node(&mut self, f: FuncId) -> NodeId {
        let id = NodeId(crate::id_u32(self.cfg.node_func.len(), "CFG nodes"));
        self.cfg.node_func.push(f);
        id
    }

    fn block(&mut self, b: &Block, mut cur: NodeId, exit: NodeId) -> Result<NodeId> {
        for labeled in &b.stmts {
            let before = cur;
            cur = self.stmt(&labeled.stmt, cur, exit)?;
            if let Some(label) = &labeled.label {
                if self
                    .cfg
                    .labels
                    .insert(label.clone(), (before, cur))
                    .is_some()
                {
                    return Err(CfgError::DuplicateLabel(label.clone()));
                }
            }
        }
        Ok(cur)
    }

    fn stmt(&mut self, s: &Stmt, cur: NodeId, exit: NodeId) -> Result<NodeId> {
        let fid = self.current;
        match s {
            Stmt::Skip => {
                let next = self.node(fid);
                self.cfg.edges.push((cur, next, EdgeLabel::Plain));
                Ok(next)
            }
            Stmt::Event { name, args } => {
                let next = self.node(fid);
                self.cfg.edges.push((
                    cur,
                    next,
                    EdgeLabel::Event {
                        name: name.clone(),
                        args: args.clone(),
                    },
                ));
                Ok(next)
            }
            Stmt::Call(name) => {
                let callee = *self
                    .fun_ids
                    .get(name.as_str())
                    .ok_or_else(|| CfgError::UnknownFunction(name.clone()))?;
                let next = self.node(fid);
                let id = CallSiteId(crate::id_u32(self.cfg.call_sites.len(), "call sites"));
                self.cfg.call_sites.push(CallSite {
                    id,
                    caller: fid,
                    call_node: cur,
                    return_node: next,
                    callee,
                });
                Ok(next)
            }
            Stmt::If(t, e) => {
                let t_end = self.block(t, cur, exit)?;
                let e_end = self.block(e, cur, exit)?;
                let next = self.node(fid);
                self.cfg.edges.push((t_end, next, EdgeLabel::Plain));
                self.cfg.edges.push((e_end, next, EdgeLabel::Plain));
                Ok(next)
            }
            Stmt::While(body) => {
                let b_end = self.block(body, cur, exit)?;
                // Loop back to the head, and exit past the loop.
                self.cfg.edges.push((b_end, cur, EdgeLabel::Plain));
                let next = self.node(fid);
                self.cfg.edges.push((cur, next, EdgeLabel::Plain));
                Ok(next)
            }
            Stmt::Return => {
                self.cfg.edges.push((cur, exit, EdgeLabel::Plain));
                // Continuation is unreachable.
                Ok(self.node(fid))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> Cfg {
        Cfg::build(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_shape() {
        let cfg = build("fn main() { s1: event a; s2: skip; }");
        // entry, exit, after-s1, after-s2 = 4 nodes.
        assert_eq!(cfg.num_nodes(), 4);
        // s1-event edge, s2-plain edge, final fallthrough to exit.
        assert_eq!(cfg.edges().len(), 3);
        let (entry_to, _, label) = &cfg.edges()[0];
        assert_eq!(*entry_to, cfg.entry("main").unwrap().entry);
        assert!(matches!(label, EdgeLabel::Event { name, .. } if name == "a"));
        assert_eq!(cfg.label_node("s1"), Some(cfg.entry("main").unwrap().entry));
        assert!(cfg.label_after("s2").is_some());
    }

    #[test]
    fn call_sites_resolved() {
        let cfg = build("fn f() { skip; } fn main() { f(); f(); }");
        assert_eq!(cfg.call_sites().len(), 2);
        let (f_id, f) = cfg.function("f").unwrap();
        for site in cfg.call_sites() {
            assert_eq!(site.callee, f_id);
        }
        assert_ne!(f.entry, f.exit);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let err = Cfg::build(&Program::parse("fn main() { ghost(); }").unwrap()).unwrap_err();
        assert_eq!(err, CfgError::UnknownFunction("ghost".to_owned()));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err =
            Cfg::build(&Program::parse("fn main() { s1: skip; s1: skip; }").unwrap()).unwrap_err();
        assert_eq!(err, CfgError::DuplicateLabel("s1".to_owned()));
    }

    #[test]
    fn return_targets_exit() {
        let cfg = build("fn main() { return; skip; }");
        let main = cfg.entry("main").unwrap();
        assert!(cfg
            .edges()
            .iter()
            .any(|(from, to, _)| *from == main.entry && *to == main.exit));
    }

    #[test]
    fn while_loops_back() {
        let cfg = build("fn main() { while (*) { event a; } skip; }");
        // There is a cycle: some edge returns to the loop head.
        let main = cfg.entry("main").unwrap();
        let head = main.entry;
        assert!(cfg.edges().iter().any(|(_, to, _)| *to == head));
    }

    #[test]
    fn dot_rendering_covers_functions_and_calls() {
        let cfg = build("fn f() { event a; } fn main() { f(); }");
        let dot = cfg.to_dot();
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("label=\"f\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"a\""));
    }

    #[test]
    fn missing_entry_reported() {
        let cfg = build("fn helper() { skip; }");
        assert!(matches!(cfg.entry("main"), Err(CfgError::MissingEntry(_))));
    }
}
