//! MiniImp recursive-descent parser.
//!
//! ```text
//! program ::= fundef*
//! fundef  ::= 'fn' IDENT '(' ')' block
//! block   ::= '{' labeled* '}'
//! labeled ::= (IDENT ':')? stmt
//! stmt    ::= 'skip' ';'
//!           | 'return' ';'
//!           | 'event' IDENT ('(' IDENT (',' IDENT)* ')')? ';'
//!           | 'if' '(' '*' ')' block ('else' block)?
//!           | 'while' '(' '*' ')' block
//!           | IDENT '(' ')' ';'              (function call)
//! ```

use crate::ast::{Block, FunDef, Labeled, Program, Stmt};
use crate::error::{CfgError, Result};
use crate::lexer::{lex, Tok};

/// Maximum nesting depth of blocks. Deeper inputs yield
/// [`CfgError::DepthExceeded`] instead of overflowing the parser's stack.
pub(crate) const MAX_DEPTH: usize = 256;

pub(crate) fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut program = Program::new();
    while p.peek().is_some() {
        program.funs.push(p.fundef()?);
    }
    Ok(program)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |(_, l)| *l)
    }

    fn err(&self, message: impl Into<String>) -> CfgError {
        CfgError::Parse {
            message: message.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let got = self.ident(&format!("`{kw}`"))?;
        if got == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{got}`")))
        }
    }

    fn fundef(&mut self) -> Result<FunDef> {
        self.keyword("fn")?;
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FunDef { name, body })
    }

    fn block(&mut self) -> Result<Block> {
        self.expect(&Tok::LBrace, "`{`")?;
        if self.depth >= MAX_DEPTH {
            return Err(CfgError::DepthExceeded { limit: MAX_DEPTH });
        }
        self.depth += 1;
        let mut block = Block::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in block"));
            }
            block.stmts.push(self.labeled()?);
        }
        self.pos += 1; // consume `}`
        self.depth -= 1;
        Ok(block)
    }

    fn labeled(&mut self) -> Result<Labeled> {
        let label =
            if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() == Some(&Tok::Colon) {
                let l = self.ident("label")?;
                self.pos += 1; // consume `:`
                Some(l)
            } else {
                None
            };
        let stmt = self.stmt()?;
        Ok(Labeled { label, stmt })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek().cloned() {
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "skip" => {
                    self.pos += 1;
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Skip)
                }
                "return" => {
                    self.pos += 1;
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Return)
                }
                "event" => {
                    self.pos += 1;
                    let name = self.ident("event name")?;
                    let mut args = Vec::new();
                    if self.peek() == Some(&Tok::LParen) {
                        self.pos += 1;
                        loop {
                            args.push(self.ident("event argument")?);
                            match self.bump() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => break,
                                other => {
                                    return Err(
                                        self.err(format!("expected `,` or `)`, found {other:?}"))
                                    )
                                }
                            }
                        }
                    }
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Event { name, args })
                }
                "if" => {
                    self.pos += 1;
                    self.expect(&Tok::LParen, "`(`")?;
                    self.expect(&Tok::Star, "`*`")?;
                    self.expect(&Tok::RParen, "`)`")?;
                    let then_block = self.block()?;
                    let else_block = if matches!(self.peek(), Some(Tok::Ident(k)) if k == "else") {
                        self.pos += 1;
                        self.block()?
                    } else {
                        Block::new()
                    };
                    Ok(Stmt::If(then_block, else_block))
                }
                "while" => {
                    self.pos += 1;
                    self.expect(&Tok::LParen, "`(`")?;
                    self.expect(&Tok::Star, "`*`")?;
                    self.expect(&Tok::RParen, "`)`")?;
                    let body = self.block()?;
                    Ok(Stmt::While(body))
                }
                _ => {
                    // Function call: IDENT '(' ')' ';'
                    self.pos += 1;
                    self.expect(&Tok::LParen, "`(`")?;
                    self.expect(&Tok::RParen, "`)`")?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Call(kw))
                }
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_section_6_3_program() {
        let src = r#"
            fn main() {
                s1: event seteuid_zero;
                if (*) {
                    s3: event seteuid_nonzero;
                } else {
                    s4: skip;
                }
                s5: event execl;
                s6: skip;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.funs.len(), 1);
        let main = &p.funs[0];
        assert_eq!(main.body.stmts.len(), 4);
        assert_eq!(main.body.stmts[0].label.as_deref(), Some("s1"));
        assert!(matches!(main.body.stmts[1].stmt, Stmt::If(..)));
    }

    #[test]
    fn parses_calls_loops_and_events_with_args() {
        let src = r#"
            fn helper() { event open(fd1); return; }
            fn main() {
                while (*) { helper(); }
                event close(fd1);
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.funs.len(), 2);
        assert!(matches!(
            &p.funs[0].body.stmts[0].stmt,
            Stmt::Event { name, args } if name == "open" && args == &["fd1".to_owned()]
        ));
        assert!(matches!(&p.funs[1].body.stmts[0].stmt, Stmt::While(_)));
    }

    #[test]
    fn if_without_else() {
        let p = parse("fn main() { if (*) { skip; } skip; }").unwrap();
        let Stmt::If(t, e) = &p.funs[0].body.stmts[0].stmt else {
            panic!("expected if");
        };
        assert_eq!(t.stmts.len(), 1);
        assert!(e.stmts.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("fn main() {\n  if ( ) {}\n}").unwrap_err();
        assert!(matches!(err, CfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn deep_block_nesting_is_a_typed_error_not_an_overflow() {
        let mut src = String::from("fn main() { ");
        for _ in 0..100_000 {
            src.push_str("while (*) { ");
        }
        // The limit trips long before the missing closers matter.
        assert!(matches!(
            parse(&src),
            Err(CfgError::DepthExceeded { limit: MAX_DEPTH })
        ));
        // Just inside the limit parses fine (function body is depth 1).
        let n = MAX_DEPTH - 1;
        let src = format!(
            "fn main() {{ {}skip;{} }}",
            "if (*) { ".repeat(n),
            " }".repeat(n)
        );
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(parse("fn main() {").is_err());
        assert!(parse("fn main(").is_err());
        assert!(parse("main() {}").is_err());
    }
}
