//! MiniPtr abstract syntax and parser.
//!
//! A small flow-insensitive pointer language (statement order within a
//! function is irrelevant, as in Andersen's analysis):
//!
//! ```text
//! program := fundef*
//! fundef  := 'fn' IDENT '(' (IDENT (',' IDENT)*)? ')' '{' stmt* '}'
//! stmt    := IDENT '=' '&' IDENT ';'          address-of
//!          | IDENT '=' IDENT ';'              copy
//!          | IDENT '=' '*' IDENT ';'          load
//!          | '*' IDENT '=' IDENT ';'          store
//!          | IDENT '=' 'alloc' ';'            heap allocation
//!          | IDENT '=' IDENT '.' IDENT ';'    field load
//!          | IDENT '.' IDENT '=' IDENT ';'    field store
//!          | IDENT '=' IDENT '(' args ')' ';' call with result
//!          | IDENT '(' args ')' ';'           call
//!          | 'return' IDENT ';'
//! args    := (arg (',' arg)*)?
//! arg     := IDENT | '&' IDENT
//! ```
//!
//! Variables are function-scoped and implicitly declared on first use.

use crate::error::{PtrError, Result};

/// A call argument: a variable or an address-of expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// Pass the variable's value.
    Var(String),
    /// Pass the variable's address (`&a`).
    AddrOf(String),
}

/// A MiniPtr statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `x = &a;`
    AddrOf {
        /// Destination.
        dst: String,
        /// The variable whose address is taken.
        of: String,
    },
    /// `x = y;`
    Copy {
        /// Destination.
        dst: String,
        /// Source.
        src: String,
    },
    /// `x = *y;`
    Load {
        /// Destination.
        dst: String,
        /// The dereferenced pointer.
        src: String,
    },
    /// `*x = y;`
    Store {
        /// The dereferenced pointer.
        dst: String,
        /// Source value.
        src: String,
    },
    /// `x = alloc;`
    Alloc {
        /// Destination.
        dst: String,
    },
    /// `x = y.f;`
    FieldLoad {
        /// Destination.
        dst: String,
        /// The base object pointer… base variable.
        base: String,
        /// Field name.
        field: String,
    },
    /// `x.f = y;`
    FieldStore {
        /// Base variable.
        base: String,
        /// Field name.
        field: String,
        /// Source value.
        src: String,
    },
    /// `x = f(args);` or `f(args);`
    Call {
        /// Result destination, if any.
        dst: Option<String>,
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// `return x;`
    Return {
        /// Returned variable.
        var: String,
    },
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDef {
    /// The function's name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The body (order-insensitive).
    pub stmts: Vec<Stmt>,
}

/// A MiniPtr program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Function definitions.
    pub funs: Vec<FunDef>,
}

impl Program {
    /// Parses MiniPtr source text.
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::Parse`] on malformed syntax.
    pub fn parse(src: &str) -> Result<Program> {
        let tokens = lex(src)?;
        let mut p = Parser { tokens, pos: 0 };
        let mut program = Program::default();
        while p.peek().is_some() {
            program.funs.push(p.fundef()?);
        }
        Ok(program)
    }

    /// Looks up a function by name.
    pub fn find(&self, name: &str) -> Option<&FunDef> {
        self.funs.iter().find(|f| f.name == name)
    }

    /// All field names used anywhere in the program.
    pub fn fields(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for f in &self.funs {
            for s in &f.stmts {
                let field = match s {
                    Stmt::FieldLoad { field, .. } | Stmt::FieldStore { field, .. } => Some(field),
                    _ => None,
                };
                if let Some(field) = field {
                    if !out.contains(&field.as_str()) {
                        out.push(field);
                    }
                }
            }
        }
        out
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Amp,
    Star,
    Eq,
    Semi,
    Comma,
    Dot,
    LParen,
    RParen,
    LBrace,
    RBrace,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '&' => {
                tokens.push((Tok::Amp, line));
                i += 1;
            }
            '*' => {
                tokens.push((Tok::Star, line));
                i += 1;
            }
            '=' => {
                tokens.push((Tok::Eq, line));
                i += 1;
            }
            ';' => {
                tokens.push((Tok::Semi, line));
                i += 1;
            }
            ',' => {
                tokens.push((Tok::Comma, line));
                i += 1;
            }
            '.' => {
                tokens.push((Tok::Dot, line));
                i += 1;
            }
            '(' => {
                tokens.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                tokens.push((Tok::RParen, line));
                i += 1;
            }
            '{' => {
                tokens.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                tokens.push((Tok::RBrace, line));
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push((Tok::Ident(src[start..i].to_owned()), line));
            }
            other => {
                return Err(PtrError::Parse {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |(_, l)| *l)
    }

    fn err(&self, message: impl Into<String>) -> PtrError {
        PtrError::Parse {
            message: message.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn fundef(&mut self) -> Result<FunDef> {
        let kw = self.ident("`fn`")?;
        if kw != "fn" {
            return Err(self.err(format!("expected `fn`, found `{kw}`")));
        }
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                params.push(self.ident("parameter name")?);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
                }
            }
        } else {
            self.pos += 1;
        }
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in function body"));
            }
            stmts.push(self.stmt()?);
        }
        self.pos += 1;
        Ok(FunDef {
            name,
            params,
            stmts,
        })
    }

    fn args(&mut self) -> Result<Vec<Arg>> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(args);
        }
        loop {
            if self.peek() == Some(&Tok::Amp) {
                self.pos += 1;
                args.push(Arg::AddrOf(self.ident("variable after `&`")?));
            } else {
                args.push(Arg::Var(self.ident("argument variable")?));
            }
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        Ok(args)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        if self.peek() == Some(&Tok::Star) {
            // *x = y;
            self.pos += 1;
            let dst = self.ident("pointer variable")?;
            self.expect(&Tok::Eq, "`=`")?;
            let src = self.ident("source variable")?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Store { dst, src });
        }
        let first = self.ident("statement")?;
        if first == "return" {
            let var = self.ident("returned variable")?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Return { var });
        }
        match self.bump() {
            Some(Tok::LParen) => {
                // f(args);
                self.pos -= 1;
                let args = self.args()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Call {
                    dst: None,
                    callee: first,
                    args,
                })
            }
            Some(Tok::Dot) => {
                // x.f = y;
                let field = self.ident("field name")?;
                self.expect(&Tok::Eq, "`=`")?;
                let src = self.ident("source variable")?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::FieldStore {
                    base: first,
                    field,
                    src,
                })
            }
            Some(Tok::Eq) => match self.bump() {
                Some(Tok::Amp) => {
                    let of = self.ident("variable after `&`")?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::AddrOf { dst: first, of })
                }
                Some(Tok::Star) => {
                    let src = self.ident("pointer variable")?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Load { dst: first, src })
                }
                Some(Tok::Ident(second)) => {
                    if second == "alloc" {
                        self.expect(&Tok::Semi, "`;`")?;
                        return Ok(Stmt::Alloc { dst: first });
                    }
                    match self.peek() {
                        Some(Tok::LParen) => {
                            let args = self.args()?;
                            self.expect(&Tok::Semi, "`;`")?;
                            Ok(Stmt::Call {
                                dst: Some(first),
                                callee: second,
                                args,
                            })
                        }
                        Some(Tok::Dot) => {
                            self.pos += 1;
                            let field = self.ident("field name")?;
                            self.expect(&Tok::Semi, "`;`")?;
                            Ok(Stmt::FieldLoad {
                                dst: first,
                                base: second,
                                field,
                            })
                        }
                        _ => {
                            self.expect(&Tok::Semi, "`;`")?;
                            Ok(Stmt::Copy {
                                dst: first,
                                src: second,
                            })
                        }
                    }
                }
                other => Err(self.err(format!("unexpected token after `=`: {other:?}"))),
            },
            other => Err(self.err(format!("unexpected token in statement: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_statement_form() {
        let p = Program::parse(
            "fn foo(x, y) { z = x; return z; }
             fn main() {
                 a = alloc;
                 p = &a;
                 q = p;
                 r = *p;
                 *p = q;
                 a.next = p;
                 s = a.next;
                 t = foo(p, &a);
                 foo(q, r);
             }",
        )
        .unwrap();
        assert_eq!(p.funs.len(), 2);
        let main = p.find("main").unwrap();
        assert_eq!(main.stmts.len(), 9);
        assert!(matches!(main.stmts[0], Stmt::Alloc { .. }));
        assert!(matches!(main.stmts[5], Stmt::FieldStore { .. }));
        assert!(matches!(main.stmts[7], Stmt::Call { dst: Some(_), .. }));
        assert_eq!(p.fields(), ["next"]);
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = Program::parse("fn main() {\n  x = ;\n}").unwrap_err();
        // The offending token is on line 2; the parser may report the
        // position after consuming it.
        assert!(
            matches!(err, PtrError::Parse { line: 2..=3, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn empty_params_and_args() {
        let p = Program::parse("fn f() { } fn main() { f(); }").unwrap();
        assert!(p.find("f").unwrap().params.is_empty());
    }
}
