//! Field-sensitive points-to analysis with *stack-aware* alias queries
//! (paper §7.5).
//!
//! The paper observes that in a constraint-based points-to analysis the
//! solutions themselves encode context-sensitive points-to sets: wrapping
//! values in per-call-site constructors `o_i` makes a points-to set a set
//! of *terms*, and two expressions provably do not alias when their term
//! sets have an empty intersection — even when their flat location sets
//! overlap. The §7.5 example:
//!
//! ```c
//! void main() { int a,b; foo¹(&a,&b); foo²(&b,&a); }
//! void foo(int *x, int *y) { /* may x and y alias? */ }
//! ```
//!
//! Flat points-to sets say `pt(x) = pt(y) = {a, b}` (may alias); the term
//! sets `X = {o₁(a), o₂(b)}`, `Y = {o₂(a), o₁(b)}` are disjoint — no alias.
//!
//! This crate implements:
//!
//! * **MiniPtr**, a small pointer language (`x = &a`, `x = y`, `x = *y`,
//!   `*x = y`, `x = alloc`, field loads/stores, calls with address-of
//!   arguments and returns);
//! * an Andersen-style **field-sensitive resolution phase** using the set
//!   constraint solver (locations as `ref`/`fld` constructors, stores
//!   through contravariant positions, derefs as projections);
//! * a **context-encoding query phase**: the resolved flow graph is
//!   replayed with per-call-site constructors so alias queries intersect
//!   term sets, exactly as §7.5 describes.
//!
//! # Example
//!
//! ```
//! use rasc_ptr::{PointsTo, Program};
//!
//! let src = r#"
//!     fn foo(x, y) { }
//!     fn main() {
//!         foo(&a, &b);
//!         foo(&b, &a);
//!     }
//! "#;
//! let program = Program::parse(src)?;
//! let mut pt = PointsTo::analyze(&program)?;
//! // Flat sets overlap…
//! assert!(pt.may_alias("foo::x", "foo::y")?);
//! // …but the stack-aware query proves the parameters never alias.
//! assert!(!pt.may_alias_stack_aware("foo::x", "foo::y")?);
//! # Ok::<(), rasc_ptr::PtrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod ast;
mod error;

pub use analysis::PointsTo;
pub use ast::{Arg, FunDef, Program, Stmt};
pub use error::{PtrError, Result};
