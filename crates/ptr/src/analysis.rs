//! The two-phase points-to analysis.
//!
//! **Phase 1 — resolution.** Andersen-style field-sensitive inclusion
//! constraints: a location is a `ref(get, set)` term (plus one
//! `fld_f(get, set)` term per program field) whose `get` position is
//! covariant and whose `set` position is contravariant; loads are
//! projections, stores flow into the contravariant position. The solver's
//! transitive closure *is* the points-to closure.
//!
//! **Phase 2 — context encoding (§7.5).** The solved value-flow graph is
//! replayed with locations as constants and per-call-site constructors
//! `o_i` wrapping argument/return flow. Points-to sets become term sets
//! (`{o₁(a), o₂(b)}`), and the stack-aware alias query is term-set
//! intersection. Flows discovered through pointers in phase 1 are replayed
//! context-insensitively (the monovariant approximation — the paper's
//! polymorphic treatment of §7.2.1 would wrap them too).

use std::collections::{HashMap, HashSet};

use rasc_automata::Dfa;
use rasc_core::algebra::MonoidAlgebra;
use rasc_core::{ConsId, SetExpr, SolverConfig, System, VarId, Variance};

use crate::ast::{Arg, Program, Stmt};
use crate::error::{PtrError, Result};

/// The trivial annotation machine: one accepting state, empty alphabet
/// (points-to constraints are unannotated; the framework degenerates to
/// plain set constraints).
fn trivial_machine() -> Dfa {
    let mut dfa = Dfa::new(0);
    let s = dfa.add_state(true);
    dfa.set_start(s);
    dfa
}

/// A solved points-to analysis; see the crate docs for an example.
#[derive(Debug)]
pub struct PointsTo {
    /// Phase-1 system (resolution).
    resolve: System<MonoidAlgebra>,
    /// Phase-2 system (context-encoded query sets).
    query: System<MonoidAlgebra>,
    /// `fn::var` → phase-1 variable.
    vars1: HashMap<String, VarId>,
    /// `fn::var` → phase-2 variable.
    vars2: HashMap<String, VarId>,
    /// Phase-1 location identity: the `get` contents variable of each
    /// location source → the location's display name.
    loc_of_contents: HashMap<VarId, String>,
}

impl PointsTo {
    /// Runs both phases on `program`.
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::UnknownFunction`] / [`PtrError::ArityMismatch`]
    /// for bad calls.
    pub fn analyze(program: &Program) -> Result<PointsTo> {
        let fields: Vec<String> = program.fields().iter().map(|s| (*s).to_owned()).collect();

        // ---------- Phase 1: resolution ----------
        // Cycle elimination is off: the phase-2 replay matches solved
        // edges against recorded call-boundary pairs by variable identity,
        // which collapsing would blur.
        let config = SolverConfig {
            cycle_elimination: false,
            ..SolverConfig::default()
        };
        let mut sys = System::with_config(MonoidAlgebra::new(&trivial_machine()), config);
        let r#ref = sys.constructor("ref", &[Variance::Covariant, Variance::Contravariant]);
        let fld: HashMap<String, ConsId> = fields
            .iter()
            .map(|f| {
                (
                    f.clone(),
                    sys.constructor(
                        &format!("fld_{f}"),
                        &[Variance::Covariant, Variance::Contravariant],
                    ),
                )
            })
            .collect();

        let mut vars1: HashMap<String, VarId> = HashMap::new();
        let mut loc_of_contents: HashMap<VarId, String> = HashMap::new();
        // Call-boundary edges to *exclude* from the phase-2 replay.
        let mut boundary: HashSet<(VarId, VarId)> = HashSet::new();
        // Recorded facts for phase 2: (target var name-id, location name).
        let mut loc_sources: Vec<(VarId, String)> = Vec::new();
        // Call records: (site, callee, arg vars (phase-1 ids), dst).
        struct CallRec {
            site: usize,
            callee: String,
            args: Vec<VarId>,
            dst: Option<VarId>,
        }
        let mut calls: Vec<CallRec> = Vec::new();

        let var = |sys: &mut System<MonoidAlgebra>,
                   vars: &mut HashMap<String, VarId>,
                   f: &str,
                   name: &str|
         -> VarId {
            let key = format!("{f}::{name}");
            if let Some(&v) = vars.get(&key) {
                return v;
            }
            let v = sys.var(&key);
            vars.insert(key, v);
            v
        };

        // Per-function return variable.
        let mut rets: HashMap<String, VarId> = HashMap::new();
        for f in &program.funs {
            let r = sys.var(&format!("{}::$ret", f.name));
            rets.insert(f.name.clone(), r);
            for p in &f.params {
                var(&mut sys, &mut vars1, &f.name, p);
            }
        }

        // Emit one location (ref + per-field terms) flowing into `target`.
        let emit_location =
            |sys: &mut System<MonoidAlgebra>,
             contents: VarId,
             name: &str,
             target: VarId,
             loc_sources: &mut Vec<(VarId, String)>,
             loc_of_contents: &mut HashMap<VarId, String>| {
                sys.add(
                    SetExpr::cons_vars(r#ref, [contents, contents]),
                    SetExpr::var(target),
                )
                .expect("well-formed");
                loc_of_contents.insert(contents, name.to_owned());
                loc_sources.push((target, name.to_owned()));
                for cons in fld.values() {
                    // Per-(location, field) contents variable.
                    let fcontents = sys.var(&format!("{name}.$field{}", cons.index()));
                    sys.add(
                        SetExpr::cons_vars(*cons, [fcontents, fcontents]),
                        SetExpr::var(target),
                    )
                    .expect("well-formed");
                }
            };

        let mut site = 0usize;
        for f in &program.funs {
            for (k, s) in f.stmts.iter().enumerate() {
                match s {
                    Stmt::AddrOf { dst, of } => {
                        let d = var(&mut sys, &mut vars1, &f.name, dst);
                        let contents = var(&mut sys, &mut vars1, &f.name, of);
                        let name = format!("{}::{of}", f.name);
                        emit_location(
                            &mut sys,
                            contents,
                            &name,
                            d,
                            &mut loc_sources,
                            &mut loc_of_contents,
                        );
                    }
                    Stmt::Alloc { dst } => {
                        let d = var(&mut sys, &mut vars1, &f.name, dst);
                        let name = format!("{}::alloc#{k}", f.name);
                        let contents = sys.var(&format!("{name}.$contents"));
                        emit_location(
                            &mut sys,
                            contents,
                            &name,
                            d,
                            &mut loc_sources,
                            &mut loc_of_contents,
                        );
                    }
                    Stmt::Copy { dst, src } => {
                        let d = var(&mut sys, &mut vars1, &f.name, dst);
                        let s = var(&mut sys, &mut vars1, &f.name, src);
                        sys.add(SetExpr::var(s), SetExpr::var(d))
                            .expect("well-formed");
                    }
                    Stmt::Load { dst, src } => {
                        let d = var(&mut sys, &mut vars1, &f.name, dst);
                        let s = var(&mut sys, &mut vars1, &f.name, src);
                        sys.add(SetExpr::proj(r#ref, 0, s), SetExpr::var(d))
                            .expect("well-formed");
                    }
                    Stmt::Store { dst, src } => {
                        let d = var(&mut sys, &mut vars1, &f.name, dst);
                        let s = var(&mut sys, &mut vars1, &f.name, src);
                        let top = sys.var("$discard");
                        sys.add(SetExpr::var(d), SetExpr::cons_vars(r#ref, [top, s]))
                            .expect("well-formed");
                    }
                    Stmt::FieldLoad { dst, base, field } => {
                        let d = var(&mut sys, &mut vars1, &f.name, dst);
                        let b = var(&mut sys, &mut vars1, &f.name, base);
                        sys.add(SetExpr::proj(fld[field], 0, b), SetExpr::var(d))
                            .expect("well-formed");
                    }
                    Stmt::FieldStore { base, field, src } => {
                        let b = var(&mut sys, &mut vars1, &f.name, base);
                        let s = var(&mut sys, &mut vars1, &f.name, src);
                        let top = sys.var("$discard");
                        sys.add(SetExpr::var(b), SetExpr::cons_vars(fld[field], [top, s]))
                            .expect("well-formed");
                    }
                    Stmt::Call { dst, callee, args } => {
                        let fun = program
                            .find(callee)
                            .ok_or_else(|| PtrError::UnknownFunction(callee.clone()))?;
                        if fun.params.len() != args.len() {
                            return Err(PtrError::ArityMismatch {
                                function: callee.clone(),
                                expected: fun.params.len(),
                                found: args.len(),
                            });
                        }
                        let mut arg_vars = Vec::new();
                        for (i, a) in args.iter().enumerate() {
                            // Materialize every argument as a temp so the
                            // boundary edge is identifiable for phase 2.
                            let t = sys.var(&format!("{}::$arg{site}_{i}", f.name));
                            match a {
                                Arg::Var(v) => {
                                    let av = var(&mut sys, &mut vars1, &f.name, v);
                                    sys.add(SetExpr::var(av), SetExpr::var(t))
                                        .expect("well-formed");
                                }
                                Arg::AddrOf(of) => {
                                    let contents = var(&mut sys, &mut vars1, &f.name, of);
                                    let name = format!("{}::{of}", f.name);
                                    emit_location(
                                        &mut sys,
                                        contents,
                                        &name,
                                        t,
                                        &mut loc_sources,
                                        &mut loc_of_contents,
                                    );
                                }
                            }
                            let p = var(&mut sys, &mut vars1, callee, &fun.params[i]);
                            sys.add(SetExpr::var(t), SetExpr::var(p))
                                .expect("well-formed");
                            boundary.insert((t, p));
                            arg_vars.push(t);
                        }
                        let dst_var = match dst {
                            Some(d) => {
                                let dv = var(&mut sys, &mut vars1, &f.name, d);
                                let r = rets[callee.as_str()];
                                sys.add(SetExpr::var(r), SetExpr::var(dv))
                                    .expect("well-formed");
                                boundary.insert((r, dv));
                                Some(dv)
                            }
                            None => None,
                        };
                        calls.push(CallRec {
                            site,
                            callee: callee.clone(),
                            args: arg_vars,
                            dst: dst_var,
                        });
                        site += 1;
                    }
                    Stmt::Return { var: v } => {
                        let rv = var(&mut sys, &mut vars1, &f.name, v);
                        let r = rets[f.name.as_str()];
                        sys.add(SetExpr::var(rv), SetExpr::var(r))
                            .expect("well-formed");
                    }
                }
            }
        }
        sys.solve();

        // ---------- Phase 2: context-encoded query sets ----------
        let mut qsys = System::new(MonoidAlgebra::new(&trivial_machine()));
        // Mirror every phase-1 variable.
        let n1 = sys.num_vars();
        let mirror: Vec<VarId> = (0..n1).map(|i| qsys.var(&format!("q{i}"))).collect();
        let vars2: HashMap<String, VarId> = vars1
            .iter()
            .map(|(k, v)| (k.clone(), mirror[v.index()]))
            .collect();

        // Location constants.
        let mut loc_consts: HashMap<String, ConsId> = HashMap::new();
        for (target, name) in &loc_sources {
            let c = *loc_consts
                .entry(name.clone())
                .or_insert_with(|| qsys.constructor(&format!("loc_{name}"), &[]));
            qsys.add(SetExpr::cons(c, []), SetExpr::var(mirror[target.index()]))
                .expect("well-formed");
        }

        // Replay the solved value-flow graph, minus call-boundary edges.
        for i in 0..n1 {
            let from = VarId::from_index(i);
            for (to, _ann) in sys.edges_from(from) {
                if boundary.contains(&(from, to)) {
                    continue;
                }
                qsys.add(
                    SetExpr::var(mirror[from.index()]),
                    SetExpr::var(mirror[to.index()]),
                )
                .expect("well-formed");
            }
        }

        // Calls: wrap with per-site constructors (§7.5).
        for call in &calls {
            let o_i = qsys.constructor(&format!("o{}", call.site), &[Variance::Covariant]);
            let fun = program.find(&call.callee).expect("validated above");
            for (i, &t) in call.args.iter().enumerate() {
                let p = vars1[&format!("{}::{}", call.callee, fun.params[i])];
                qsys.add(
                    SetExpr::cons_vars(o_i, [mirror[t.index()]]),
                    SetExpr::var(mirror[p.index()]),
                )
                .expect("well-formed");
            }
            if let Some(dv) = call.dst {
                let r = rets[call.callee.as_str()];
                // Matched return (unwraps this site's wrapper)…
                qsys.add(
                    SetExpr::proj(o_i, 0, mirror[r.index()]),
                    SetExpr::var(mirror[dv.index()]),
                )
                .expect("well-formed");
                // …plus the bare flow for callee-origin locations (values
                // never wrapped by this call).
                qsys.add(
                    SetExpr::var(mirror[r.index()]),
                    SetExpr::var(mirror[dv.index()]),
                )
                .expect("well-formed");
            }
        }
        qsys.solve();

        Ok(PointsTo {
            resolve: sys,
            query: qsys,
            vars1,
            vars2,
            loc_of_contents,
        })
    }

    fn lookup1(&self, name: &str) -> Result<VarId> {
        self.vars1
            .get(name)
            .copied()
            .ok_or_else(|| PtrError::UnknownVariable(name.to_owned()))
    }

    fn lookup2(&self, name: &str) -> Result<VarId> {
        self.vars2
            .get(name)
            .copied()
            .ok_or_else(|| PtrError::UnknownVariable(name.to_owned()))
    }

    /// The flat points-to set of `fn::var`: sorted location names.
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::UnknownVariable`] for unknown names.
    pub fn points_to(&self, name: &str) -> Result<Vec<String>> {
        let v = self.lookup1(name)?;
        let mut out: Vec<String> = self
            .resolve
            .lower_bounds(v)
            .filter_map(|(_cons, args, _ann)| {
                args.first()
                    .and_then(|a| self.loc_of_contents.get(a))
                    .cloned()
            })
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Flat may-alias: do the two points-to sets share a location?
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::UnknownVariable`] for unknown names.
    pub fn may_alias(&self, x: &str, y: &str) -> Result<bool> {
        let a = self.points_to(x)?;
        let b = self.points_to(y)?;
        Ok(a.iter().any(|l| b.contains(l)))
    }

    /// Stack-aware may-alias (§7.5): do the two *term* sets — locations
    /// wrapped in their call-site constructors — intersect?
    ///
    /// Always a subset of [`PointsTo::may_alias`]: contexts can only
    /// separate, never merge.
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::UnknownVariable`] for unknown names.
    pub fn may_alias_stack_aware(&mut self, x: &str, y: &str) -> Result<bool> {
        let a = self.lookup2(x)?;
        let b = self.lookup2(y)?;
        Ok(self.query.intersect_nonempty(a, b))
    }

    /// The context-sensitive points-to terms of `fn::var`, rendered for
    /// diagnostics (e.g. `["o0(loc_main::a)", "o1(loc_main::b)"]`).
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::UnknownVariable`] for unknown names.
    pub fn points_to_terms(&mut self, name: &str) -> Result<Vec<String>> {
        let v = self.lookup2(name)?;
        let terms = self.query.ground_terms(v, 8, 64);
        let mut out: Vec<String> = terms.iter().map(|t| self.render(t)).collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    fn render(&self, t: &rasc_core::GroundTerm) -> String {
        let name = self.query.constructor_decl(t.cons).name().to_owned();
        if t.args.is_empty() {
            name
        } else {
            let args: Vec<String> = t.args.iter().map(|a| self.render(a)).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> PointsTo {
        PointsTo::analyze(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn basic_address_and_copy() {
        let pt = analyze("fn main() { p = &a; q = p; r = &b; }");
        assert_eq!(pt.points_to("main::p").unwrap(), ["main::a"]);
        assert_eq!(pt.points_to("main::q").unwrap(), ["main::a"]);
        assert_eq!(pt.points_to("main::r").unwrap(), ["main::b"]);
        assert!(pt.may_alias("main::p", "main::q").unwrap());
        assert!(!pt.may_alias("main::p", "main::r").unwrap());
    }

    #[test]
    fn loads_and_stores() {
        // *p = q; r = *p  ⇒  r points to whatever q points to.
        let pt = analyze("fn main() { p = &a; q = &b; *p = q; r = *p; }");
        assert_eq!(pt.points_to("main::r").unwrap(), ["main::b"]);
        // And `a`'s contents now include &b.
        assert_eq!(pt.points_to("main::a").unwrap(), ["main::b"]);
    }

    #[test]
    fn fields_are_separated() {
        let pt = analyze(
            "fn main() {
                 o = alloc;
                 x = &a; y = &b;
                 o.f = x; o.g = y;
                 fx = o.f; gy = o.g;
             }",
        );
        assert_eq!(pt.points_to("main::fx").unwrap(), ["main::a"]);
        assert_eq!(pt.points_to("main::gy").unwrap(), ["main::b"]);
    }

    #[test]
    fn interprocedural_flow_and_returns() {
        let pt = analyze(
            "fn id(p) { return p; }
             fn main() { x = &a; y = id(x); }",
        );
        assert_eq!(pt.points_to("main::y").unwrap(), ["main::a"]);
        assert_eq!(pt.points_to("id::p").unwrap(), ["main::a"]);
    }

    #[test]
    fn the_papers_section_7_5_example() {
        // void main() { int a,b; foo¹(&a,&b); foo²(&b,&a); }
        // void foo(int *x, int *y) { /* may x and y be aliased? */ }
        let mut pt = analyze(
            "fn foo(x, y) { }
             fn main() {
                 foo(&a, &b);
                 foo(&b, &a);
             }",
        );
        // Flat sets: pt(x) = pt(y) = {a, b} ⇒ may alias.
        assert_eq!(pt.points_to("foo::x").unwrap(), ["main::a", "main::b"]);
        assert_eq!(pt.points_to("foo::y").unwrap(), ["main::a", "main::b"]);
        assert!(pt.may_alias("foo::x", "foo::y").unwrap());
        // Term sets: X = {o₁(a), o₂(b)}, Y = {o₂(a), o₁(b)} — disjoint.
        assert!(!pt.may_alias_stack_aware("foo::x", "foo::y").unwrap());
        // The rendered terms match the paper's presentation.
        let x_terms = pt.points_to_terms("foo::x").unwrap();
        assert_eq!(x_terms.len(), 2);
        assert!(x_terms.iter().all(|t| t.starts_with("o")));
    }

    #[test]
    fn genuinely_aliased_parameters_stay_aliased() {
        let mut pt = analyze(
            "fn foo(x, y) { }
             fn main() { foo(&a, &a); }",
        );
        assert!(pt.may_alias_stack_aware("foo::x", "foo::y").unwrap());
    }

    #[test]
    fn callee_allocations_flow_to_callers() {
        let mut pt = analyze(
            "fn mk() { n = alloc; return n; }
             fn main() { x = mk(); y = mk(); }",
        );
        assert_eq!(pt.points_to("main::x").unwrap(), ["mk::alloc#0"]);
        // Allocation-site abstraction: both calls share the site, so the
        // stack-aware query cannot separate them (the paper's wrapped
        // allocation-function caveat, solved there by deeper stacks).
        assert!(pt.may_alias_stack_aware("main::x", "main::y").unwrap());
    }

    #[test]
    fn alias_through_copies_is_preserved() {
        let mut pt = analyze(
            "fn foo(x, y) { }
             fn main() { p = &a; q = p; foo(p, q); }",
        );
        assert!(pt.may_alias_stack_aware("foo::x", "foo::y").unwrap());
    }

    #[test]
    fn unknown_names_error() {
        let pt = analyze("fn main() { p = &a; }");
        assert!(matches!(
            pt.points_to("main::zzz"),
            Err(PtrError::UnknownVariable(_))
        ));
        assert!(matches!(
            PointsTo::analyze(&Program::parse("fn main() { ghost(); }").unwrap()),
            Err(PtrError::UnknownFunction(_))
        ));
        assert!(matches!(
            PointsTo::analyze(&Program::parse("fn f(a) {} fn main() { f(); }").unwrap()),
            Err(PtrError::ArityMismatch { .. })
        ));
    }
}
