//! Error types for the points-to analysis.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, PtrError>;

/// Errors from parsing or analyzing MiniPtr programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtrError {
    /// Malformed source text.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// A call names an undefined function.
    UnknownFunction(String),
    /// A call has the wrong number of arguments.
    ArityMismatch {
        /// The callee.
        function: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// A query named a variable that does not exist (`fn::var`).
    UnknownVariable(String),
}

impl fmt::Display for PtrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtrError::Parse { message, line } => {
                write!(f, "parse error at line {line}: {message}")
            }
            PtrError::UnknownFunction(name) => write!(f, "call to undefined function `{name}`"),
            PtrError::ArityMismatch {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` takes {expected} argument(s), got {found}"
            ),
            PtrError::UnknownVariable(name) => {
                write!(f, "unknown variable `{name}` (use the `fn::var` form)")
            }
        }
    }
}

impl std::error::Error for PtrError {}
