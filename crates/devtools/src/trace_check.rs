//! Chrome trace-event schema validation, for the observability golden
//! tests and the CI smoke job.
//!
//! Checks the subset of the trace-event JSON-object format that
//! `rasc_obs::ChromeTraceSink` emits and that Perfetto /
//! `chrome://tracing` require to load a file at all:
//!
//! * the root is an object with a `traceEvents` array;
//! * every event has a string `name`, a phase `ph` of `B`, `E`, or `C`,
//!   and numeric `ts`, `pid`, and `tid` fields;
//! * timestamps are non-decreasing in file order;
//! * `B`/`E` duration events nest properly: every `E` closes the
//!   innermost open `B` of the same name, and nothing is left open;
//! * every `C` counter event carries a numeric `args.value`.

use rasc_inc::json::Json;

/// What [`validate_chrome_trace`] saw in a well-formed trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `ph:"B"` span-begin events.
    pub begins: usize,
    /// `ph:"E"` span-end events.
    pub ends: usize,
    /// `ph:"C"` counter events.
    pub counters: usize,
    /// Deepest `B`/`E` nesting observed.
    pub max_depth: usize,
}

/// Validates `text` as a Chrome trace-event file; returns a summary of
/// the events seen, or a message pinpointing the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = Json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "root object has no `traceEvents` array".to_owned())?;
    let mut summary = TraceSummary::default();
    let mut open: Vec<String> = Vec::new();
    let mut last_ts = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event #{i}: missing string `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event #{i} ({name}): missing string `ph`"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event #{i} ({name}): missing numeric `ts`"))?;
        for field in ["pid", "tid"] {
            ev.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event #{i} ({name}): missing numeric `{field}`"))?;
        }
        if ts < last_ts {
            return Err(format!(
                "event #{i} ({name}): timestamp {ts} goes backwards (previous {last_ts})"
            ));
        }
        last_ts = ts;
        match ph {
            "B" => {
                open.push(name.to_owned());
                summary.begins += 1;
                summary.max_depth = summary.max_depth.max(open.len());
            }
            "E" => {
                let Some(top) = open.pop() else {
                    return Err(format!("event #{i} ({name}): `E` with no open `B`"));
                };
                if top != name {
                    return Err(format!(
                        "event #{i}: `E` for `{name}` but innermost open span is `{top}`"
                    ));
                }
                summary.ends += 1;
            }
            "C" => {
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_u64)
                    .ok_or_else(|| {
                        format!("event #{i} ({name}): counter without numeric `args.value`")
                    })?;
                summary.counters += 1;
            }
            other => {
                return Err(format!("event #{i} ({name}): unknown phase `{other}`"));
            }
        }
        summary.events += 1;
    }
    if let Some(name) = open.pop() {
        return Err(format!("span `{name}` is never closed"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_trace() {
        let text = r#"{"traceEvents":[
            {"name":"outer","ph":"B","ts":1,"pid":1,"tid":1,"args":{}},
            {"name":"inner","ph":"B","ts":2,"pid":1,"tid":1,"args":{}},
            {"name":"n","ph":"C","ts":3,"pid":1,"tid":1,"args":{"value":7}},
            {"name":"inner","ph":"E","ts":4,"pid":1,"tid":1},
            {"name":"outer","ph":"E","ts":5,"pid":1,"tid":1}
        ],"displayTimeUnit":"ms"}"#;
        let s = validate_chrome_trace(text).expect("valid");
        assert_eq!(
            s,
            TraceSummary {
                events: 5,
                begins: 2,
                ends: 2,
                counters: 1,
                max_depth: 2,
            }
        );
    }

    #[test]
    fn rejects_malformed_traces() {
        let cases: &[(&str, &str)] = &[
            ("not json", "not valid JSON"),
            (r#"{"foo":[]}"#, "traceEvents"),
            (
                r#"{"traceEvents":[{"ph":"B","ts":1,"pid":1,"tid":1}]}"#,
                "missing string `name`",
            ),
            (
                r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}"#,
                "never closed",
            ),
            (
                r#"{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}"#,
                "no open `B`",
            ),
            (
                r#"{"traceEvents":[
                    {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
                    {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}
                ]}"#,
                "innermost open span",
            ),
            (
                r#"{"traceEvents":[{"name":"c","ph":"C","ts":1,"pid":1,"tid":1}]}"#,
                "args.value",
            ),
            (
                r#"{"traceEvents":[
                    {"name":"c","ph":"C","ts":5,"pid":1,"tid":1,"args":{"value":1}},
                    {"name":"c","ph":"C","ts":4,"pid":1,"tid":1,"args":{"value":2}}
                ]}"#,
                "goes backwards",
            ),
            (
                r#"{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":1,"tid":1}]}"#,
                "unknown phase",
            ),
        ];
        for (text, needle) in cases {
            let err = validate_chrome_trace(text).expect_err("must reject");
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }
}
