//! Prometheus text-exposition validation, for the admin-endpoint
//! integration tests and the CI scrape job.
//!
//! Checks the subset of the text exposition format (version 0.0.4) that
//! `rasc_obs::MetricsSnapshot::to_prometheus` emits and that a
//! Prometheus scraper requires to ingest a page at all:
//!
//! * every line is a `# TYPE <name> <counter|gauge|histogram>` /
//!   `# HELP` comment or a `<name>[{labels}] <value>` sample;
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * every sample belongs to a preceding `# TYPE` family (counters via
//!   their `_total` suffix, histograms via `_bucket`/`_sum`/`_count`);
//! * histogram bucket series are cumulative (non-decreasing in `le`
//!   order), end with an `le="+Inf"` bucket, and agree with `_count`;
//! * no metric name is declared twice and no sample is duplicated.

use std::collections::BTreeMap;

/// What [`validate_prometheus`] saw in a well-formed exposition page.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromSummary {
    /// `# TYPE` families declared, by kind: `(counters, gauges, histograms)`.
    pub families: (usize, usize, usize),
    /// Total sample lines.
    pub samples: usize,
    /// Every non-bucket sample value by full sample name (including
    /// `_total`/`_sum`/`_count` suffixes), so callers can assert on e.g.
    /// `serve_requests_total`.
    pub values: BTreeMap<String, f64>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// Per-histogram bucket bookkeeping while scanning its sample lines.
#[derive(Debug, Default)]
struct HistState {
    last_cumulative: Option<u64>,
    saw_inf: Option<u64>,
    count: Option<u64>,
}

/// Validates `text` as a Prometheus text exposition page; returns a
/// summary of the families and samples seen, or a message pinpointing
/// the first violation.
pub fn validate_prometheus(text: &str) -> Result<PromSummary, String> {
    let mut families: BTreeMap<String, Kind> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();
    let mut summary = PromSummary::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {n}: `# TYPE` without a metric name"))?;
                    if !valid_name(name) {
                        return Err(format!("line {n}: bad metric name `{name}`"));
                    }
                    let kind = match parts.next() {
                        Some("counter") => Kind::Counter,
                        Some("gauge") => Kind::Gauge,
                        Some("histogram") => Kind::Histogram,
                        other => {
                            return Err(format!("line {n}: bad metric type {other:?}"));
                        }
                    };
                    if families.insert(name.to_owned(), kind).is_some() {
                        return Err(format!("line {n}: metric `{name}` declared twice"));
                    }
                    match kind {
                        Kind::Counter => summary.families.0 += 1,
                        Kind::Gauge => summary.families.1 += 1,
                        Kind::Histogram => {
                            summary.families.2 += 1;
                            hists.insert(name.to_owned(), HistState::default());
                        }
                    }
                }
                Some("HELP") => {} // free-form; nothing to check
                _ => return Err(format!("line {n}: unrecognized comment `{line}`")),
            }
            continue;
        }
        // A sample: `name value` or `name{labels} value`.
        let (name_part, value_part) = match line.find([' ', '\t']) {
            Some(i) if !line[..i].contains('{') => (&line[..i], line[i..].trim()),
            _ => {
                let close = line
                    .find('}')
                    .ok_or_else(|| format!("line {n}: malformed sample `{line}`"))?;
                (&line[..=close], line[close + 1..].trim())
            }
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((n_, l)) => (
                n_,
                Some(
                    l.strip_suffix('}')
                        .ok_or_else(|| format!("line {n}: unterminated labels in `{line}`"))?,
                ),
            ),
            None => (name_part, None),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: bad metric name `{name}`"));
        }
        let value: f64 = if value_part == "+Inf" {
            f64::INFINITY
        } else {
            value_part
                .parse()
                .map_err(|_| format!("line {n}: bad sample value `{value_part}`"))?
        };
        summary.samples += 1;
        // Resolve the family this sample belongs to.
        let family = if let Some(base) = name.strip_suffix("_bucket") {
            let Some(Kind::Histogram) = families.get(base).copied() else {
                return Err(format!("line {n}: `{name}` has no histogram family"));
            };
            let labels =
                labels.ok_or_else(|| format!("line {n}: `{name}` bucket without `le` label"))?;
            let le = labels
                .split(',')
                .find_map(|kv| kv.trim().strip_prefix("le="))
                .map(|v| v.trim_matches('"'))
                .ok_or_else(|| format!("line {n}: `{name}` bucket without `le` label"))?;
            let cumulative = value as u64;
            let Some(state) = hists.get_mut(base) else {
                return Err(format!("line {n}: `{name}` has no histogram family"));
            };
            if let Some(prev) = state.last_cumulative {
                if cumulative < prev {
                    return Err(format!(
                        "line {n}: `{name}` bucket series not cumulative ({cumulative} < {prev})"
                    ));
                }
            }
            state.last_cumulative = Some(cumulative);
            if le == "+Inf" {
                if state.saw_inf.is_some() {
                    return Err(format!("line {n}: `{name}` has two +Inf buckets"));
                }
                state.saw_inf = Some(cumulative);
            } else if le.parse::<f64>().is_err() {
                return Err(format!("line {n}: `{name}` has bad le boundary `{le}`"));
            }
            base.to_owned()
        } else if let Some(base) = name.strip_suffix("_sum") {
            if families.get(base) == Some(&Kind::Histogram) {
                base.to_owned()
            } else {
                name.to_owned()
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if families.get(base) == Some(&Kind::Histogram) {
                if let Some(state) = hists.get_mut(base) {
                    state.count = Some(value as u64);
                }
                base.to_owned()
            } else {
                name.to_owned()
            }
        } else {
            name.to_owned()
        };
        if !families.contains_key(&family) && !families.contains_key(name) {
            return Err(format!("line {n}: sample `{name}` has no `# TYPE` family"));
        }
        if !name.ends_with("_bucket") {
            let key = match labels {
                Some(l) => format!("{name}{{{l}}}"),
                None => name.to_owned(),
            };
            if summary.values.insert(key, value).is_some() {
                return Err(format!("line {n}: duplicate sample `{name}`"));
            }
        }
    }
    for (name, state) in &hists {
        let inf = state
            .saw_inf
            .ok_or_else(|| format!("histogram `{name}` has no +Inf bucket"))?;
        let count = state
            .count
            .ok_or_else(|| format!("histogram `{name}` has no `_count` sample"))?;
        if inf != count {
            return Err(format!(
                "histogram `{name}`: +Inf bucket {inf} disagrees with _count {count}"
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_page() {
        let page = "\
# TYPE serve_requests_total counter
serve_requests_total 42
# TYPE serve_inflight gauge
serve_inflight 3
# TYPE serve_request_micros histogram
serve_request_micros_bucket{le=\"127\"} 1
serve_request_micros_bucket{le=\"255\"} 2
serve_request_micros_bucket{le=\"+Inf\"} 2
serve_request_micros_sum 300
serve_request_micros_count 2
";
        let s = validate_prometheus(page).unwrap();
        assert_eq!(s.families, (1, 1, 1));
        assert_eq!(s.values["serve_requests_total"], 42.0);
        assert_eq!(s.values["serve_request_micros_count"], 2.0);
    }

    #[test]
    fn rejects_violations() {
        for (page, why) in [
            ("serve_requests_total 1\n", "sample with no family"),
            ("# TYPE x counter\nx_total nope\n", "bad value"),
            ("# TYPE 9x counter\n", "bad name"),
            ("# TYPE x counter\n# TYPE x counter\n", "declared twice"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
                "+Inf disagrees with count",
            ),
            (
                "# TYPE h histogram\nh_sum 1\nh_count 0\n",
                "missing +Inf bucket",
            ),
            (
                "# TYPE x counter\nx_total 1\nx_total 2\n",
                "duplicate sample",
            ),
        ] {
            assert!(validate_prometheus(page).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn accepts_registry_output_end_to_end() {
        let reg = rasc_obs::MetricsRegistry::new();
        reg.counter("serve.requests", 7);
        reg.gauge("serve.inflight", 2);
        for v in [0u64, 1, 5, 130, 70_000] {
            reg.histogram("serve.request.micros", v);
        }
        use rasc_obs::EventSink as _;
        reg.span_begin("serve.connection");
        reg.span_end("serve.connection");
        let s = validate_prometheus(&reg.render_prometheus()).unwrap();
        assert_eq!(s.values["serve_requests_total"], 7.0);
        assert_eq!(s.values["serve_request_micros_count"], 5.0);
        assert_eq!(s.values["serve_connection_spans_total"], 1.0);
    }
}
