//! Offline development tooling for the `rasc` workspace.
//!
//! The build environment has no access to crates.io, so the usual
//! dev-dependencies (`rand`, `proptest`, `criterion`) are replaced by this
//! small self-contained crate:
//!
//! * [`Rng`] — a seedable xorshift64* PRNG (deterministic per seed);
//! * [`forall`] / [`Config`] — a minimal property-test harness with
//!   counterexample shrinking for `Vec`-shaped inputs;
//! * [`fn@bench`] — wall-clock benchmark timing with warmup and
//!   median/mean reporting;
//! * [`FaultPlan`] — deterministic fault injection for the solver's
//!   resource governor (trips a budget axis at the N-th solver step);
//! * [`IoFaultPlan`] / [`FaultyWriter`] — deterministic IO fault
//!   injection for the snapshot subsystem (short writes, full disks,
//!   truncation, bit rot, crashes around the atomic rename);
//! * [`hostile`] — adversarial batch-protocol line generation, shared by
//!   the stdin and TCP fuzz suites;
//! * [`validate_chrome_trace`] — schema checker for the Chrome
//!   trace-event files `rasc_obs::ChromeTraceSink` writes;
//! * [`validate_prometheus`] — checker for the Prometheus text
//!   exposition pages the `rasc serve --admin-addr` endpoint emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod fault;
mod faultio;
pub mod hostile;
mod promcheck;
mod prop;
mod rng;
mod trace_check;

pub use bench::{bench, bench_secs, BenchStats, Bencher};
pub use fault::{FaultKind, FaultPlan, SteppedClock};
pub use faultio::{FaultyWriter, IoFaultKind, IoFaultPlan};
pub use promcheck::{validate_prometheus, PromSummary};
pub use prop::{forall, Config, Shrink, Unshrunk};
pub use rng::Rng;
pub use trace_check::{validate_chrome_trace, TraceSummary};
