//! Deterministic IO fault injection for the snapshot subsystem.
//!
//! An [`IoFaultPlan`] names a byte-level failure mode and an offset;
//! materializing it wraps a byte sink in a [`FaultyWriter`] that fails
//! exactly there, or corrupts already-written bytes the way a torn or
//! bit-rotted file would look on disk. Everything is deterministic, so
//! property tests composing plans with [`crate::forall`] replay
//! bit-for-bit from a seed.
//!
//! Crash points around the atomic-rename protocol are modeled as the
//! on-disk states that protocol can actually leave behind
//! ([`IoFaultPlan::crash_state`]): a crash *before* the rename leaves the
//! old snapshot plus a stray partial `.tmp`; a crash *after* leaves the
//! new snapshot. There is deliberately no in-between — that is the whole
//! point of write-then-rename — and the recovery suite asserts loads see
//! exactly one of those two worlds.

use std::io::{self, Write};

use crate::rng::Rng;

/// Which IO failure mode an [`IoFaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The sink accepts only a prefix: writes at the offset report
    /// `Ok(0)`-style short progress and then fail with `WriteZero`.
    ShortWrite,
    /// The device fills up: writes at the offset fail with an
    /// out-of-space error (`ENOSPC`-shaped).
    Enospc,
    /// The file is truncated to the offset after a seemingly complete
    /// write — a torn snapshot as left by a crash mid-write.
    Truncation,
    /// One bit at the offset flips — silent media corruption.
    BitFlip,
    /// The process dies before the temp file is renamed over the target:
    /// the previous snapshot survives, a partial `.tmp` litters the
    /// directory.
    CrashBeforeRename,
    /// The process dies just after the rename: the new snapshot is fully
    /// durable.
    CrashAfterRename,
}

/// Durable `(target, tmp)` file contents after a modeled crash: the
/// surviving snapshot (if any) and the stray partial `.tmp` (if any).
/// See [`IoFaultPlan::crash_state`].
pub type CrashState<'a> = (Option<&'a [u8]>, Option<Vec<u8>>);

/// A deterministic IO fault: a failure mode and the byte offset at which
/// it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// The failure mode to inject.
    pub kind: IoFaultKind,
    /// Byte offset at which the fault strikes (clamped to the data's
    /// length where it must land inside it).
    pub at_byte: usize,
}

impl IoFaultPlan {
    /// A plan injecting `kind` at byte `at_byte`.
    pub fn new(kind: IoFaultKind, at_byte: usize) -> IoFaultPlan {
        IoFaultPlan { kind, at_byte }
    }

    /// Draws a random plan (uniform kind, offset in `0..max_byte`) for
    /// the [`crate::forall`] harness.
    pub fn arbitrary(rng: &mut Rng, max_byte: usize) -> IoFaultPlan {
        let kind = match rng.gen_range(0..6) {
            0 => IoFaultKind::ShortWrite,
            1 => IoFaultKind::Enospc,
            2 => IoFaultKind::Truncation,
            3 => IoFaultKind::BitFlip,
            4 => IoFaultKind::CrashBeforeRename,
            _ => IoFaultKind::CrashAfterRename,
        };
        IoFaultPlan::new(kind, rng.gen_range(0..max_byte.max(1)))
    }

    /// Whether the plan's mode fails the write itself (`ShortWrite`,
    /// `Enospc`) as opposed to corrupting bytes at rest or simulating a
    /// crash around the rename.
    pub fn fails_write(&self) -> bool {
        matches!(self.kind, IoFaultKind::ShortWrite | IoFaultKind::Enospc)
    }

    /// Applies an at-rest corruption to a fully written snapshot:
    /// truncates at the offset or flips one bit there. Returns `None`
    /// for modes that do not corrupt bytes at rest.
    pub fn corrupt(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        match self.kind {
            IoFaultKind::Truncation => Some(bytes[..self.at_byte.min(bytes.len())].to_vec()),
            IoFaultKind::BitFlip if !bytes.is_empty() => {
                let mut out = bytes.to_vec();
                let i = self.at_byte % out.len();
                out[i] ^= 1 << (self.at_byte % 8);
                Some(out)
            }
            _ => None,
        }
    }

    /// The durable on-disk state after a crash at this plan's point in
    /// the write-temp/fsync/rename protocol, as `(target, tmp)` file
    /// contents: `old` is the pre-existing snapshot (if any), `new` the
    /// snapshot being written. Returns `None` for non-crash modes.
    pub fn crash_state<'a>(&self, old: Option<&'a [u8]>, new: &'a [u8]) -> Option<CrashState<'a>> {
        match self.kind {
            IoFaultKind::CrashBeforeRename => {
                // The tmp file holds whatever prefix reached the disk.
                let tmp = new[..self.at_byte.min(new.len())].to_vec();
                Some((old, Some(tmp)))
            }
            IoFaultKind::CrashAfterRename => Some((Some(new), None)),
            _ => None,
        }
    }
}

impl crate::prop::Shrink for IoFaultPlan {
    fn shrink(&self) -> Vec<IoFaultPlan> {
        let mut out: Vec<IoFaultPlan> = self
            .at_byte
            .shrink()
            .into_iter()
            .map(|b| IoFaultPlan::new(self.kind, b))
            .collect();
        // Truncation is the simplest corruption; prefer it.
        if self.kind != IoFaultKind::Truncation {
            out.push(IoFaultPlan::new(IoFaultKind::Truncation, self.at_byte));
        }
        out
    }
}

/// An `io::Write` that injects a planned fault at an exact byte offset —
/// accepting bytes before it, then short-writing or failing like a full
/// disk. Non-write-failing plans pass everything through.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    plan: IoFaultPlan,
    written: usize,
    tripped: bool,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` so `plan` strikes at its offset.
    pub fn new(inner: W, plan: IoFaultPlan) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// Bytes successfully accepted before (or without) the fault.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Whether the planned fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Unwraps the inner sink (holding whatever prefix was accepted).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.plan.fails_write() {
            let n = self.inner.write(buf)?;
            self.written += n;
            return Ok(n);
        }
        if self.written >= self.plan.at_byte {
            self.tripped = true;
            return match self.plan.kind {
                IoFaultKind::Enospc => Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected fault: no space left on device",
                )),
                _ => Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected fault: sink accepts no more bytes",
                )),
            };
        }
        // Accept only up to the fault offset; the caller's retry of the
        // remainder then trips the fault (exactly how a real short write
        // surfaces through `write_all`).
        let room = self.plan.at_byte - self.written;
        let n = buf.len().min(room.max(1));
        let n = self.inner.write(&buf[..n])?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<IoFaultPlan> {
            let mut rng = Rng::new(seed);
            (0..64)
                .map(|_| IoFaultPlan::arbitrary(&mut rng, 512))
                .collect()
        };
        assert_eq!(draw(7), draw(7));
    }

    #[test]
    fn short_write_accepts_exactly_the_prefix() {
        let data = vec![0xAB; 100];
        for cut in [0usize, 1, 37, 99] {
            let mut w =
                FaultyWriter::new(Vec::new(), IoFaultPlan::new(IoFaultKind::ShortWrite, cut));
            let err = w.write_all(&data).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WriteZero);
            assert!(w.tripped());
            assert_eq!(w.written(), cut);
            assert_eq!(w.into_inner().len(), cut);
        }
    }

    #[test]
    fn enospc_is_a_storage_full_error() {
        let mut w = FaultyWriter::new(Vec::new(), IoFaultPlan::new(IoFaultKind::Enospc, 4));
        let err = w.write_all(&[1, 2, 3, 4, 5, 6]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(w.written(), 4);
    }

    #[test]
    fn passthrough_modes_do_not_interfere() {
        let mut w = FaultyWriter::new(
            Vec::new(),
            IoFaultPlan::new(IoFaultKind::CrashAfterRename, 2),
        );
        w.write_all(b"all of it").unwrap();
        w.flush().unwrap();
        assert!(!w.tripped());
        assert_eq!(w.into_inner(), b"all of it");
    }

    #[test]
    fn corruption_and_crash_states_are_modeled() {
        let bytes: Vec<u8> = (0..=255).collect();
        let t = IoFaultPlan::new(IoFaultKind::Truncation, 10);
        assert_eq!(t.corrupt(&bytes).unwrap().len(), 10);
        let f = IoFaultPlan::new(IoFaultKind::BitFlip, 300);
        let flipped = f.corrupt(&bytes).unwrap();
        assert_eq!(flipped.len(), bytes.len());
        assert_eq!(
            flipped.iter().zip(&bytes).filter(|(a, b)| a != b).count(),
            1
        );
        assert!(t.crash_state(None, &bytes).is_none());

        let old = vec![9u8; 5];
        let before = IoFaultPlan::new(IoFaultKind::CrashBeforeRename, 3);
        let (target, tmp) = before.crash_state(Some(&old), &bytes).unwrap();
        assert_eq!(target, Some(old.as_slice()));
        assert_eq!(tmp.unwrap(), &bytes[..3]);
        let after = IoFaultPlan::new(IoFaultKind::CrashAfterRename, 3);
        let (target, tmp) = after.crash_state(Some(&old), &bytes).unwrap();
        assert_eq!(target, Some(bytes.as_slice()));
        assert!(tmp.is_none());
    }

    #[test]
    fn shrinking_moves_toward_early_truncations() {
        let plan = IoFaultPlan::new(IoFaultKind::BitFlip, 64);
        let shrunk = crate::prop::Shrink::shrink(&plan);
        assert!(shrunk.iter().any(|p| p.kind == IoFaultKind::Truncation));
        assert!(shrunk.iter().any(|p| p.at_byte < 64));
    }
}
