//! A small deterministic PRNG (xorshift64*), replacing `rand` for the
//! workload generators and property tests.

/// A seedable xorshift64* pseudo-random number generator.
///
/// Not cryptographic; statistically fine for workload generation and
/// property-test case selection. Generation is deterministic per seed, so
/// workloads and failing cases are reproducible.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams; a zero seed is remapped (xorshift has a zero fixpoint).
    pub fn new(seed: u64) -> Rng {
        // SplitMix64 scramble of the seed so that consecutive seeds do not
        // give correlated initial states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Modulo bias is negligible for the small spans used here.
        range.start + (self.next_u64() % span) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_and_probabilities_are_sane() {
        let mut rng = Rng::new(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(3..8);
            assert!((3..8).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit");
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }
}
