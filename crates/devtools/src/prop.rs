//! A minimal property-test harness: random cases from a generator
//! function, a property returning `Result`, and greedy shrinking of
//! failing inputs.

use crate::rng::Rng;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; case `i` uses stream `seed + i`.
    pub seed: u64,
    /// Upper bound on shrink attempts once a failure is found.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            seed: 0x5EED_0000_BA5E, // fixed default seed for reproducibility
            max_shrink_steps: 1024,
        }
    }
}

impl Config {
    /// A configuration running `cases` cases with the default seed.
    pub fn cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Types that can propose strictly "smaller" variants of themselves, for
/// counterexample shrinking. The default proposes nothing.
pub trait Shrink: Sized {
    /// Candidate smaller values; the harness keeps any candidate that
    /// still fails the property and iterates.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self > 0 {
                    out.push(0);
                    if *self > 1 {
                        out.push(*self / 2);
                    }
                    out.push(*self - 1);
                }
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for String {}

/// Opts a value out of shrinking (for generated structures with no
/// natural notion of "smaller", e.g. compiled machines or ASTs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unshrunk<T>(pub T);

impl<T: Clone> Shrink for Unshrunk<T> {}

impl<T: Clone + Shrink> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink() {
                        let mut tuple = self.clone();
                        tuple.$idx = candidate;
                        out.push(tuple);
                    }
                )+
                out
            }
        }
    )*};
}

impl_shrink_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Halves first (fast progress), then single-element removals.
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        for i in 0..n.min(32) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        out
    }
}

/// Runs `prop` on `cfg.cases` values drawn from `gen`, shrinking and
/// panicking with the smallest counterexample found on failure.
///
/// The property signals failure by returning `Err(message)`; use ordinary
/// `assert!` only for conditions that should abort without shrinking.
pub fn forall<T, G, P>(name: &str, cfg: Config, gen: G, prop: P)
where
    T: std::fmt::Debug + Clone + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let mut rng = Rng::new(cfg.seed.wrapping_add(u64::from(case)));
        let input = gen(&mut rng);
        if let Err(first_msg) = prop(&input) {
            let (min_input, min_msg) = shrink_failure(input, first_msg, cfg, &prop);
            panic!(
                "property `{name}` failed (case {case}, seed {}):\n  {min_msg}\n  \
                 minimal input: {min_input:#?}",
                cfg.seed.wrapping_add(u64::from(case)),
            );
        }
    }
}

fn shrink_failure<T, P>(mut input: T, mut msg: String, cfg: Config, prop: &P) -> (T, String)
where
    T: std::fmt::Debug + Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in input.shrink() {
            steps += 1;
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
            if let Err(m) = prop(&candidate) {
                input = candidate;
                msg = m;
                continue 'outer;
            }
        }
        break; // no candidate fails: input is locally minimal
    }
    (input, msg)
}

/// Fails the enclosing property (which must return `Result<(), String>`)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!("expected equal:\n  left:  {left:?}\n  right: {right:?}"));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "expected equal ({}):\n  left:  {left:?}\n  right: {right:?}",
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut _count = 0;
        forall(
            "sorted-after-sort",
            Config::cases(32),
            |rng| {
                (0..rng.gen_range(0..10))
                    .map(|_| rng.next_u64())
                    .collect::<Vec<_>>()
            },
            |v| {
                let mut s = v.clone();
                s.sort();
                prop_assert!(s.windows(2).all(|w| w[0] <= w[1]));
                Ok(())
            },
        );
        _count += 1;
    }

    #[test]
    fn failing_property_shrinks_to_a_small_case() {
        let result = std::panic::catch_unwind(|| {
            forall(
                "no-big-values",
                Config::cases(64),
                |rng| {
                    (0..rng.gen_range(0..20))
                        .map(|_| rng.gen_range(0..100))
                        .collect::<Vec<_>>()
                },
                |v| {
                    prop_assert!(v.iter().all(|&x| x < 90), "found {v:?}");
                    Ok(())
                },
            )
        });
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("panic message"),
        };
        // The shrunk counterexample should be a single offending element.
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains("no-big-values"), "{msg}");
    }
}
