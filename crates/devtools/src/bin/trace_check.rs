//! CI gate: validates a Chrome trace-event file produced by
//! `rasc batch --trace` (or any `rasc_obs::ChromeTraceSink` user)
//! against the trace-event schema.
//!
//! Usage: `trace_check FILE…` — exits non-zero on the first invalid file
//! and prints a per-file event summary otherwise.

use std::process::ExitCode;

use rasc_devtools::validate_chrome_trace;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_check: cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_chrome_trace(&text) {
            Ok(s) => println!(
                "{path}: ok — {} events ({} spans, {} counters, max depth {})",
                s.events, s.begins, s.counters, s.max_depth
            ),
            Err(msg) => {
                eprintln!("trace_check: `{path}` is not a valid trace: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
