//! CI gate: validates a Prometheus text-exposition page scraped from
//! `rasc serve --admin-addr` (or any `rasc_obs::MetricsRegistry` user)
//! against the exposition format.
//!
//! Usage: `promcheck FILE…` — exits non-zero on the first invalid file
//! and prints a per-file family/sample summary otherwise. Pass
//! `--require NAME` to additionally fail unless sample `NAME` is present
//! (CI uses it to prove a scrape actually saw request traffic).

use std::process::ExitCode;

use rasc_devtools::validate_prometheus;

fn main() -> ExitCode {
    let mut required: Vec<String> = Vec::new();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--require" {
            match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("promcheck: --require needs a sample name");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: promcheck [--require SAMPLE]... FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promcheck: cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_prometheus(&text) {
            Ok(s) => {
                for name in &required {
                    match s.values.get(name) {
                        Some(v) => println!("{path}: {name} = {v}"),
                        None => {
                            eprintln!("promcheck: `{path}` has no sample `{name}`");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                let (counters, gauges, histograms) = s.families;
                println!(
                    "{path}: ok — {} samples ({counters} counters, {gauges} gauges, \
                     {histograms} histograms)",
                    s.samples
                );
            }
            Err(msg) => {
                eprintln!("promcheck: `{path}` is not a valid exposition page: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
