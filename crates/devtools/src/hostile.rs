//! Adversarial batch-protocol input generation, shared by the stdin fuzz
//! suite (`tests/proptest_batch_fuzz.rs`) and the TCP fuzz suite
//! (`tests/serve.rs`): garbage bytes, punctuation soup, deep nesting,
//! truncated and type-mangled commands. Every generated line is
//! newline-free, so it frames cleanly over both stdin and a socket.

use crate::rng::Rng;

/// Templates that are valid (or plausibly shaped) protocol lines before
/// mutation.
const TEMPLATES: &[&str] = &[
    r#"{"cmd":"declare","var":"V1"}"#,
    r#"{"cmd":"declare","con":"c","arity":1}"#,
    r#"{"cmd":"add","lhs":"c","rhs":"V1","ann":["g"]}"#,
    r#"{"cmd":"add","lhs":"V1","rhs":"V2"}"#,
    r#"{"cmd":"query","what":"occurrences","var":"V1","con":"c"}"#,
    r#"{"cmd":"push"}"#,
    r#"{"cmd":"pop"}"#,
    r#"{"cmd":"stats"}"#,
    r#"{"cmd":"limits","max_steps":3}"#,
    r#"{"cmd":"limits"}"#,
];

const GARBAGE_CHARS: &[char] = &[
    '{', '}', '[', ']', '"', ':', ',', '\\', 'a', 'V', '0', '9', '-', '.', 'e', 'n', 't', 'f', ' ',
    '\t', 'é', '∆', '\u{7f}', '\'', '/',
];

/// One adversarial protocol line: a random mix of garbage soup, deep
/// nesting (exercising the JSON reader's depth cap), truncated or
/// byte-mangled valid commands, and well-formed JSON of hostile shape.
/// Never contains a newline. Deterministic per [`Rng`] stream.
pub fn hostile_line(rng: &mut Rng) -> String {
    match rng.gen_range(0..8) {
        // Punctuation/garbage soup.
        0 | 1 => (0..rng.gen_range(0..60))
            .map(|_| *rng.choose(GARBAGE_CHARS))
            .collect(),
        // Deep nesting (would be a stack overflow without json's depth cap).
        2 => {
            let open = *rng.choose(&['[', '{']);
            let mut s: String = std::iter::repeat_n(open, rng.gen_range(1..600)).collect();
            if open == '{' {
                s = s.replace('{', "{\"a\":");
                s.push('1');
            }
            s
        }
        // Truncated valid command.
        3 | 4 => {
            let t = rng.choose(TEMPLATES);
            let cut = rng.gen_range(0..t.len());
            t.chars().take(cut).collect()
        }
        // Valid command with one random byte substituted.
        5 | 6 => {
            let t: Vec<char> = rng.choose(TEMPLATES).chars().collect();
            let i = rng.gen_range(0..t.len());
            let mut s = String::new();
            for (j, c) in t.iter().enumerate() {
                s.push(if j == i {
                    *rng.choose(GARBAGE_CHARS)
                } else {
                    *c
                });
            }
            s
        }
        // Valid JSON, hostile shape: wrong types, unknown commands.
        _ => match rng.gen_range(0..5) {
            0 => r#"{"cmd":5}"#.to_owned(),
            1 => r#"{"cmd":"add","lhs":{},"rhs":[]}"#.to_owned(),
            2 => format!(r#"{{"cmd":"{}"}}"#, "x".repeat(rng.gen_range(1..40))),
            3 => r#"{"cmd":"limits","max_steps":-1}"#.to_owned(),
            _ => format!(r#"{{"cmd":"declare","var":"{}"}}"#, "\\u0000"),
        },
    }
}

/// Whether the protocol treats `line` as silent (no response): blank, or
/// a `#` comment.
pub fn is_silent(line: &str) -> bool {
    let t = line.trim();
    t.is_empty() || t.starts_with('#')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_newline_free_and_deterministic() {
        let collect = || -> Vec<String> {
            let mut rng = Rng::new(0xBADC_0FFE);
            (0..500).map(|_| hostile_line(&mut rng)).collect()
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b, "deterministic per seed");
        assert!(a.iter().all(|l| !l.contains('\n')), "newline-free");
        // The generator covers several shapes, not just one.
        assert!(a.iter().any(|l| l.len() > 100), "deep nesting present");
        assert!(a.iter().any(|l| l.starts_with('{')), "JSON-ish present");
    }

    #[test]
    fn silent_classification_matches_the_protocol() {
        assert!(is_silent(""));
        assert!(is_silent("   "));
        assert!(is_silent("# comment"));
        assert!(!is_silent("{}"));
        assert!(!is_silent("x"));
    }
}
