//! Wall-clock benchmark timing, replacing `criterion` for the offline
//! benchmark harness.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark label.
    pub name: String,
    /// Measured iterations (after warmup).
    pub iters: u32,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: f64,
}

impl BenchStats {
    /// Median time per iteration in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns / 1e9
    }
}

/// Renders nanoseconds with an adaptive unit.
fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times `f` with a short warmup, then runs it until `min_time` elapses
/// (at least `min_iters` iterations), returning per-iteration statistics.
///
/// The closure's return value is consumed by a black-box sink so the
/// optimizer cannot delete the measured work.
pub fn bench<T>(
    name: &str,
    min_iters: u32,
    min_time: Duration,
    mut f: impl FnMut() -> T,
) -> BenchStats {
    // Warmup: one untimed run (JIT-free Rust, so this mostly warms caches).
    sink(f());
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while samples.len() < min_iters as usize || start.elapsed() < min_time {
        let t0 = Instant::now();
        sink(f());
        samples.push(t0.elapsed().as_nanos() as f64);
        if samples.len() >= 1_000_000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let iters = samples.len() as u32;
    let mean_ns = samples.iter().sum::<f64>() / f64::from(iters);
    let median_ns = samples[samples.len() / 2];
    BenchStats {
        name: name.to_owned(),
        iters,
        mean_ns,
        median_ns,
        min_ns: samples[0],
    }
}

/// Convenience: single timed run of `f`, in seconds (for long workloads
/// where repeated sampling is too expensive).
pub fn bench_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[inline]
fn sink<T>(value: T) {
    // An opaque drop: reading the value through a volatile-ish pattern is
    // unnecessary — forbidding inlining of this sink is enough to keep the
    // computed value alive in practice for these coarse benchmarks.
    std::hint::black_box(value);
}

/// A small criterion-flavoured runner: collects [`BenchStats`] and prints
/// one aligned line per benchmark as it completes.
#[derive(Debug, Default)]
pub struct Bencher {
    min_iters: u32,
    min_time: Duration,
    results: Vec<BenchStats>,
}

impl Bencher {
    /// A runner with the default sampling policy (10 iterations and at
    /// least 300 ms per benchmark).
    pub fn new() -> Bencher {
        Bencher {
            min_iters: 10,
            min_time: Duration::from_millis(300),
            results: Vec::new(),
        }
    }

    /// Overrides the minimum number of measured iterations.
    pub fn sample_size(mut self, iters: u32) -> Bencher {
        self.min_iters = iters;
        self
    }

    /// Overrides the minimum sampling time per benchmark.
    pub fn min_time(mut self, d: Duration) -> Bencher {
        self.min_time = d;
        self
    }

    /// Runs and records one benchmark, printing its summary line.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) -> &BenchStats {
        let stats = bench(name, self.min_iters, self.min_time, f);
        println!(
            "{:<44} median {:>12}  mean {:>12}  ({} iters)",
            stats.name,
            human(stats.median_ns),
            human(stats.mean_ns),
            stats.iters
        );
        self.results.push(stats);
        match self.results.last() {
            Some(s) => s,
            None => unreachable!("just pushed"),
        }
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_ordered() {
        let fast = bench("fast", 5, Duration::from_millis(5), || 1 + 1);
        let slow = bench("slow", 5, Duration::from_millis(5), || {
            (0..20_000u64).map(std::hint::black_box).sum::<u64>()
        });
        assert!(fast.median_ns > 0.0);
        assert!(slow.median_ns > fast.median_ns);
        assert!(fast.min_ns <= fast.median_ns);
    }

    #[test]
    fn bencher_collects_results() {
        let mut b = Bencher::new()
            .sample_size(3)
            .min_time(Duration::from_millis(1));
        b.bench("a", || 42);
        b.bench("b", || 43);
        assert_eq!(b.results().len(), 2);
        assert_eq!(b.results()[0].name, "a");
    }
}
