//! Deterministic fault injection for the solver's resource governor.
//!
//! A [`FaultPlan`] names a governor axis and a step count; materializing
//! it ([`FaultPlan::budget`]) yields a [`Budget`] that interrupts a solve
//! at (or within one step of) the planned worklist step — with no real
//! clocks or threads, so property tests composing plans with the
//! [`crate::Rng`] harness replay bit-for-bit from a seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rasc_core::{Budget, CancelToken, Clock};

use crate::rng::Rng;

/// Which governor axis a [`FaultPlan`] trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The step (fuel) budget runs out.
    StepExhaustion,
    /// The wall-clock deadline passes (driven by a stepped fake clock).
    Deadline,
    /// The [`CancelToken`] fires (driven by a trigger clock, standing in
    /// for an external canceller such as a disconnecting client).
    Cancellation,
}

/// A deterministic plan to interrupt a bounded solve at the `at_step`-th
/// worklist step via the chosen mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The axis to trip.
    pub kind: FaultKind,
    /// The worklist step at which to trip it. `0` interrupts before any
    /// fact is processed.
    pub at_step: u64,
}

impl FaultPlan {
    /// A plan tripping `kind` at worklist step `at_step`.
    pub fn new(kind: FaultKind, at_step: u64) -> FaultPlan {
        FaultPlan { kind, at_step }
    }

    /// Draws a random plan (uniform kind, step in `0..max_step`) — for
    /// composing with the [`crate::forall`] property harness.
    pub fn arbitrary(rng: &mut Rng, max_step: u64) -> FaultPlan {
        let kind = match rng.gen_range(0..3) {
            0 => FaultKind::StepExhaustion,
            1 => FaultKind::Deadline,
            _ => FaultKind::Cancellation,
        };
        FaultPlan::new(kind, rng.gen_range(0..max_step.max(1) as usize) as u64)
    }

    /// Materializes the plan as a [`Budget`]. Each call builds fresh
    /// clock/token state, so one plan can bound many solves
    /// independently.
    ///
    /// The solver consults the budget once per worklist step, which is
    /// what makes the fake clocks step-deterministic: `StepExhaustion`
    /// trips exactly at `at_step`; `Deadline` and `Cancellation` trip
    /// within one step of it.
    pub fn budget(&self) -> Budget {
        match self.kind {
            FaultKind::StepExhaustion => Budget::unlimited().with_steps(self.at_step),
            FaultKind::Deadline => Budget::unlimited()
                .with_deadline_millis(self.at_step)
                .with_clock(Arc::new(SteppedClock::default())),
            FaultKind::Cancellation => {
                let token = CancelToken::new();
                let trigger = TriggerClock {
                    ticks: AtomicU64::new(0),
                    fire_at: self.at_step,
                    token: token.clone(),
                };
                // The huge deadline never trips; it only forces the
                // solver to consult the trigger clock every step.
                Budget::unlimited()
                    .with_deadline_millis(u64::MAX / 2)
                    .with_clock(Arc::new(trigger))
                    .with_cancel(token)
            }
        }
    }
}

impl crate::prop::Shrink for FaultPlan {
    fn shrink(&self) -> Vec<FaultPlan> {
        let mut out: Vec<FaultPlan> = self
            .at_step
            .shrink()
            .into_iter()
            .map(|s| FaultPlan::new(self.kind, s))
            .collect();
        // Step exhaustion is the simplest mechanism; prefer it.
        if self.kind != FaultKind::StepExhaustion {
            out.push(FaultPlan::new(FaultKind::StepExhaustion, self.at_step));
        }
        out
    }
}

/// A fake clock advancing one millisecond per consultation.
#[derive(Debug, Default)]
pub struct SteppedClock {
    ticks: AtomicU64,
}

impl Clock for SteppedClock {
    fn now_millis(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }
}

/// A fake clock that cancels a token at its `fire_at`-th consultation,
/// standing in for an external canceller.
#[derive(Debug)]
struct TriggerClock {
    ticks: AtomicU64,
    fire_at: u64,
    token: CancelToken,
}

impl Clock for TriggerClock {
    fn now_millis(&self) -> u64 {
        let t = self.ticks.fetch_add(1, Ordering::Relaxed);
        if t >= self.fire_at {
            self.token.cancel();
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_core::InterruptReason;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a: Vec<FaultPlan> = {
            let mut rng = Rng::new(42);
            (0..32)
                .map(|_| FaultPlan::arbitrary(&mut rng, 100))
                .collect()
        };
        let b: Vec<FaultPlan> = {
            let mut rng = Rng::new(42);
            (0..32)
                .map(|_| FaultPlan::arbitrary(&mut rng, 100))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn budgets_trip_the_planned_axis() {
        // Exercise the materialized budgets through their public shape:
        // steps-only plans produce a steps cap, the others install clocks.
        let b = FaultPlan::new(FaultKind::StepExhaustion, 7).budget();
        assert_eq!(b.max_steps(), Some(7));
        let b = FaultPlan::new(FaultKind::Deadline, 7).budget();
        assert_eq!(b.max_millis(), Some(7));
        let b = FaultPlan::new(FaultKind::Cancellation, 7).budget();
        assert!(b.max_millis().is_some());
        let _ = InterruptReason::Cancelled; // axis exercised end-to-end in proptest_faults
    }
}
