//! Interprocedural bit-vector dataflow analysis on the CFG, via gen/kill
//! annotations (paper §3.3 and the §6 introduction).
//!
//! The n-bit gen/kill language of §3.3 makes interprocedural dataflow a
//! direct instance of annotated constraints: CFG edges are constraints
//! annotated with transfer functions, call/return matching is carried by
//! per-site constructors (context-sensitivity for free), and the facts
//! holding at a program point are read off the `pc` occurrence
//! annotations.
//!
//! Three engines are provided:
//!
//! * [`ConstraintDataflow`] — forward may-analysis via annotated set
//!   constraints with the [`GenKillAlgebra`](rasc_core::algebra::GenKillAlgebra)
//!   (context-sensitive: call/return paths are matched);
//! * [`IterativeDataflow`] — the classical context-insensitive worklist
//!   baseline, for cross-validation and benchmarking;
//! * [`Liveness`] — a backward analysis built on the
//!   [`BackwardSystem`](rasc_core::backward::BackwardSystem) solver (§5's
//!   backward congruence), one 3-state machine per fact.
//!
//! # Example
//!
//! ```
//! use rasc_cfgir::{Cfg, Program};
//! use rasc_dataflow::{ConstraintDataflow, GenKillSpec};
//!
//! let program = Program::parse(
//!     "fn main() { gen_x: event def_x; kill_x: event undef_x; done: skip; }",
//! ).unwrap();
//! let cfg = Cfg::build(&program).unwrap();
//! let mut spec = GenKillSpec::new();
//! let x = spec.fact("x");
//! spec.event("def_x", &[x], &[]);
//! spec.event("undef_x", &[], &[x]);
//! let mut df = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
//! df.solve();
//! let after_def = cfg.label_after("gen_x").unwrap();
//! let after_kill = cfg.label_after("kill_x").unwrap();
//! assert_eq!(df.facts_at(after_def), 1 << x);
//! assert_eq!(df.facts_at(after_kill), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backward_iterative;
mod constraint_df;
mod forward_df;
mod iterative;
mod liveness;
mod spec;

pub use backward_iterative::IterativeLiveness;
pub use constraint_df::ConstraintDataflow;
pub use forward_df::ForwardDataflow;
pub use iterative::IterativeDataflow;
pub use liveness::{Liveness, LivenessSpecEntry};
pub use spec::GenKillSpec;
