//! Forward may-dataflow via annotated set constraints.

use rasc_cfgir::{Cfg, CfgError, EdgeLabel, NodeId};
use rasc_core::algebra::GenKillAlgebra;
use rasc_core::{ConsId, SetExpr, System, VarId, Variance};

use crate::spec::GenKillSpec;

/// A context-sensitive forward may-analysis: which facts *may* hold at
/// each program point, for executions from the entry with no initial
/// facts.
///
/// The encoding mirrors the model checker's (§6.1): one variable per CFG
/// node, `pc` seeded at the entry, event edges annotated with their
/// gen/kill transfer, and per-call-site constructors matching call/return
/// paths — which is exactly what makes the analysis context-sensitive
/// (facts generated in one calling context do not leak into another).
#[derive(Debug)]
pub struct ConstraintDataflow {
    sys: System<GenKillAlgebra>,
    node_vars: Vec<VarId>,
    pc: ConsId,
    facts: Vec<u64>,
}

impl ConstraintDataflow {
    /// Builds the analysis for `spec` over `cfg`, starting at `entry`.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::MissingEntry`] if `entry` is missing.
    pub fn new(cfg: &Cfg, spec: &GenKillSpec, entry: &str) -> Result<ConstraintDataflow, CfgError> {
        let entry_node = cfg.entry(entry)?.entry;
        let mut sys = System::new(GenKillAlgebra::new(spec.num_facts() as u32));
        let node_vars: Vec<VarId> = (0..cfg.num_nodes())
            .map(|i| sys.var(&format!("S{i}")))
            .collect();
        let pc = sys.constructor("pc", &[]);
        sys.add(
            SetExpr::cons(pc, []),
            SetExpr::var(node_vars[entry_node.index()]),
        )
        .expect("well-formed");

        for (from, to, label) in cfg.edges() {
            let ann = match label {
                EdgeLabel::Plain => None,
                EdgeLabel::Event { name, .. } => spec
                    .effect(name)
                    .map(|(g, k)| sys.algebra_mut().transfer(g, k)),
            };
            let lhs = SetExpr::var(node_vars[from.index()]);
            let rhs = SetExpr::var(node_vars[to.index()]);
            match ann {
                Some(a) => sys.add_ann(lhs, rhs, a).expect("well-formed"),
                None => sys.add(lhs, rhs).expect("well-formed"),
            }
        }
        for site in cfg.call_sites() {
            let callee = &cfg.functions()[site.callee.index()];
            let o_i = sys.constructor(&format!("o{}", site.id.index()), &[Variance::Covariant]);
            sys.add(
                SetExpr::cons_vars(o_i, [node_vars[site.call_node.index()]]),
                SetExpr::var(node_vars[callee.entry.index()]),
            )
            .expect("well-formed");
            sys.add(
                SetExpr::proj(o_i, 0, node_vars[callee.exit.index()]),
                SetExpr::var(node_vars[site.return_node.index()]),
            )
            .expect("well-formed");
        }

        Ok(ConstraintDataflow {
            sys,
            node_vars,
            pc,
            facts: Vec::new(),
        })
    }

    /// Solves the constraints and computes per-node fact vectors.
    pub fn solve(&mut self) {
        self.sys.solve();
        let occ = self.sys.constant_occurrence_map(self.pc);
        self.facts = self
            .node_vars
            .iter()
            .map(|&v| {
                occ[v.index()]
                    .iter()
                    .fold(0u64, |m, &a| m | self.sys.algebra().apply(a, 0))
            })
            .collect();
    }

    /// The facts that may hold at a node (bitmask over the spec's fact
    /// indices). Unreachable nodes report no facts.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ConstraintDataflow::solve`].
    pub fn facts_at(&self, n: NodeId) -> u64 {
        assert!(!self.facts.is_empty(), "call solve() first");
        self.facts[n.index()]
    }

    /// Whether the node is reachable from the entry at all.
    pub fn reachable(&mut self, n: NodeId) -> bool {
        let var = self.node_vars[n.index()];
        !self.sys.occurrence_annotations(var, self.pc).is_empty()
    }

    /// The underlying constraint system, for diagnostics.
    pub fn system(&self) -> &System<GenKillAlgebra> {
        &self.sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_cfgir::Program;

    fn setup(src: &str) -> (Cfg, GenKillSpec) {
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let mut spec = GenKillSpec::new();
        let x = spec.fact("x");
        let y = spec.fact("y");
        spec.event("def_x", &[x], &[]);
        spec.event("kill_x", &[], &[x]);
        spec.event("def_y", &[y], &[]);
        (cfg, spec)
    }

    #[test]
    fn straight_line_gen_kill() {
        let (cfg, spec) =
            setup("fn main() { a: event def_x; b: event def_y; c: event kill_x; d: skip; }");
        let mut df = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve();
        assert_eq!(df.facts_at(cfg.label_after("a").unwrap()), 0b01);
        assert_eq!(df.facts_at(cfg.label_after("b").unwrap()), 0b11);
        assert_eq!(df.facts_at(cfg.label_after("c").unwrap()), 0b10);
    }

    #[test]
    fn branches_merge_with_union() {
        let (cfg, spec) =
            setup("fn main() { if (*) { event def_x; } else { event def_y; } m: skip; }");
        let mut df = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve();
        // May-analysis: both facts possible at the merge.
        assert_eq!(df.facts_at(cfg.label_node("m").unwrap()), 0b11);
    }

    #[test]
    fn context_sensitivity_across_calls() {
        // f is called once with x set and once with x killed; the fact
        // must not leak from one context's return to the other.
        let (cfg, spec) = setup(
            "fn f() { skip; }
             fn main() {
                 event def_x;
                 f();
                 p: skip;
                 event kill_x;
                 f();
                 q: skip;
             }",
        );
        let mut df = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve();
        assert_eq!(df.facts_at(cfg.label_node("p").unwrap()) & 1, 1, "x at p");
        assert_eq!(
            df.facts_at(cfg.label_node("q").unwrap()) & 1,
            0,
            "x was killed before the second call; a context-insensitive \
             analysis would report it via the first call's return"
        );
    }

    #[test]
    fn facts_generated_in_callee_flow_back() {
        let (cfg, spec) = setup(
            "fn gen() { event def_x; }
             fn main() { gen(); p: skip; }",
        );
        let mut df = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve();
        assert_eq!(df.facts_at(cfg.label_node("p").unwrap()) & 1, 1);
    }

    #[test]
    fn loops_terminate_and_accumulate() {
        let (cfg, spec) = setup("fn main() { while (*) { event def_x; } p: skip; }");
        let mut df = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve();
        // Zero or more iterations: x may hold at p.
        assert_eq!(df.facts_at(cfg.label_node("p").unwrap()) & 1, 1);
    }

    #[test]
    fn unreachable_code_has_no_facts() {
        let (cfg, spec) = setup("fn main() { return; u: event def_x; v: skip; }");
        let mut df = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve();
        assert_eq!(df.facts_at(cfg.label_after("u").unwrap()), 0);
        assert!(!df.reachable(cfg.label_after("u").unwrap()));
    }
}
