//! Backward liveness analysis on the CFG via the backward solver (§5).

use rasc_automata::{Alphabet, Dfa};
use rasc_cfgir::{Cfg, CfgError, EdgeLabel, NodeId};
use rasc_core::backward::{BackwardSystem, ProbeId};
use rasc_core::VarId;

/// A specification for liveness: per-fact *use* and *def* event names.
#[derive(Debug, Clone, Default)]
pub struct LivenessSpecEntry {
    /// The fact's name (e.g. a variable).
    pub fact: String,
    /// Events that use the fact (make it live backwards).
    pub uses: Vec<String>,
    /// Events that define/overwrite the fact (kill liveness backwards).
    pub defs: Vec<String>,
}

/// Backward liveness: a fact is *live* at a node when some path from the
/// node reaches a use before any def.
///
/// Each fact gets its own 3-state machine — `Start --use--> Live(accept)`,
/// `Start --def--> Dead`, with `Live`/`Dead` traps — and a
/// [`BackwardSystem`] run over the CFG (calls treated context-insensitively,
/// the regular-reachability fragment the backward solver handles; see
/// DESIGN.md). This is the paper's point that backward interprocedural
/// bit-vector problems fit the same framework with the backward congruence.
#[derive(Debug)]
pub struct Liveness {
    systems: Vec<(String, BackwardSystem, ProbeId)>,
    node_vars: Vec<VarId>,
}

impl Liveness {
    /// Builds liveness for the given facts over `cfg`.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice, but kept fallible for symmetry
    /// with the other engines.
    pub fn new(cfg: &Cfg, facts: &[LivenessSpecEntry]) -> Result<Liveness, CfgError> {
        let mut systems = Vec::new();
        let mut node_vars_shared: Vec<VarId> = Vec::new();
        for entry in facts {
            // Build the per-fact 3-state machine over the alphabet of this
            // fact's relevant events.
            let mut sigma = Alphabet::new();
            for u in &entry.uses {
                sigma.intern(u);
            }
            for d in &entry.defs {
                sigma.intern(d);
            }
            let mut dfa = Dfa::new(sigma.len());
            let start = dfa.add_state(false);
            let live = dfa.add_state(true);
            let dead = dfa.add_state(false);
            dfa.set_start(start);
            for u in &entry.uses {
                let s = sigma.lookup(u).expect("interned");
                dfa.set_transition(start, s, live);
            }
            for d in &entry.defs {
                let s = sigma.lookup(d).expect("interned");
                // A use that is also a def (e.g. `x = x + 1`) counts as a
                // use first on the backward path; keep the use transition.
                if dfa.delta(start, s).is_none() {
                    dfa.set_transition(start, s, dead);
                }
            }
            for sym in sigma.symbols() {
                dfa.set_transition(live, sym, live);
                dfa.set_transition(dead, sym, dead);
            }

            let mut sys = BackwardSystem::new(&dfa);
            let node_vars: Vec<VarId> = (0..cfg.num_nodes())
                .map(|i| sys.var(&format!("S{i}")))
                .collect();
            let end = sys.var("$end");
            let eps = sys.identity();
            // Every point can be "the end of interest".
            for &v in &node_vars {
                sys.add_edge(v, end, eps);
            }
            for (from, to, label) in cfg.edges() {
                let ann = match label {
                    EdgeLabel::Plain => eps,
                    EdgeLabel::Event { name, .. } => match sigma.lookup(name) {
                        Some(s) => sys.word(&[s]),
                        None => eps,
                    },
                };
                sys.add_edge(node_vars[from.index()], node_vars[to.index()], ann);
            }
            for site in cfg.call_sites() {
                let callee = &cfg.functions()[site.callee.index()];
                sys.add_edge(
                    node_vars[site.call_node.index()],
                    node_vars[callee.entry.index()],
                    eps,
                );
                sys.add_edge(
                    node_vars[callee.exit.index()],
                    node_vars[site.return_node.index()],
                    eps,
                );
            }
            let probe = sys.probe(end, &entry.fact);
            node_vars_shared = node_vars;
            systems.push((entry.fact.clone(), sys, probe));
        }
        Ok(Liveness {
            systems,
            node_vars: node_vars_shared,
        })
    }

    /// Runs all per-fact backward solvers.
    pub fn solve(&mut self) {
        for (_, sys, _) in &mut self.systems {
            sys.solve();
        }
    }

    /// Whether `fact` is live at node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `fact` was not declared.
    pub fn live_at(&self, fact: &str, n: NodeId) -> bool {
        let (_, sys, probe) = self
            .systems
            .iter()
            .find(|(f, _, _)| f == fact)
            .unwrap_or_else(|| panic!("unknown fact `{fact}`"));
        sys.reaches_accepting(*probe, self.node_vars[n.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_cfgir::Program;

    fn liveness(src: &str) -> (Cfg, Liveness) {
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let facts = vec![LivenessSpecEntry {
            fact: "x".to_owned(),
            uses: vec!["use_x".to_owned()],
            defs: vec!["def_x".to_owned()],
        }];
        let mut l = Liveness::new(&cfg, &facts).unwrap();
        l.solve();
        (cfg, l)
    }

    #[test]
    fn live_before_use_dead_after() {
        let (cfg, l) = liveness("fn main() { a: skip; b: event use_x; c: skip; }");
        assert!(l.live_at("x", cfg.label_node("a").unwrap()));
        assert!(l.live_at("x", cfg.label_node("b").unwrap()));
        assert!(!l.live_at("x", cfg.label_node("c").unwrap()));
    }

    #[test]
    fn def_kills_liveness_backward() {
        let (cfg, l) = liveness("fn main() { a: skip; b: event def_x; c: event use_x; d: skip; }");
        assert!(
            !l.live_at("x", cfg.label_node("a").unwrap()),
            "def shadows the use"
        );
        assert!(l.live_at("x", cfg.label_node("c").unwrap()));
    }

    #[test]
    fn branch_makes_live_on_some_path() {
        let (cfg, l) = liveness(
            "fn main() { a: skip; if (*) { event def_x; } else { skip; } u: event use_x; }",
        );
        // On the else path the use is reached without a def.
        assert!(l.live_at("x", cfg.label_node("a").unwrap()));
    }

    #[test]
    fn interprocedural_use_in_callee() {
        let (cfg, l) = liveness(
            "fn f() { event use_x; }
             fn main() { a: skip; f(); b: skip; }",
        );
        assert!(l.live_at("x", cfg.label_node("a").unwrap()));
        assert!(!l.live_at("x", cfg.label_node("b").unwrap()));
    }
}
