//! The classical iterative worklist baseline (context-insensitive).

use std::collections::VecDeque;

use rasc_cfgir::{Cfg, CfgError, EdgeLabel, NodeId};

use crate::spec::GenKillSpec;

/// A context-*insensitive* forward may-analysis: the standard worklist
/// algorithm over the CFG with call and return edges treated as plain
/// control flow.
///
/// Serves two roles: a cross-validation oracle (its result is always a
/// superset of [`crate::ConstraintDataflow`]'s, with equality on call-free
/// programs) and the classical-baseline column for benchmarks.
#[derive(Debug)]
pub struct IterativeDataflow {
    /// `(from, to, gen, kill)` edges.
    edges: Vec<(u32, u32, u64, u64)>,
    /// Outgoing edge indices per node.
    out: Vec<Vec<u32>>,
    entry_node: NodeId,
    facts: Vec<u64>,
    reachable: Vec<bool>,
}

impl IterativeDataflow {
    /// Builds the analysis for `spec` over `cfg`, starting at `entry`.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::MissingEntry`] if `entry` is missing.
    pub fn new(cfg: &Cfg, spec: &GenKillSpec, entry: &str) -> Result<IterativeDataflow, CfgError> {
        let entry_node = cfg.entry(entry)?.entry;
        let mut edges = Vec::new();
        for (from, to, label) in cfg.edges() {
            let (g, k) = match label {
                EdgeLabel::Plain => (0, 0),
                EdgeLabel::Event { name, .. } => spec.effect(name).unwrap_or((0, 0)),
            };
            edges.push((from.index() as u32, to.index() as u32, g, k));
        }
        for site in cfg.call_sites() {
            let callee = &cfg.functions()[site.callee.index()];
            edges.push((
                site.call_node.index() as u32,
                callee.entry.index() as u32,
                0,
                0,
            ));
            edges.push((
                callee.exit.index() as u32,
                site.return_node.index() as u32,
                0,
                0,
            ));
        }
        let mut out = vec![Vec::new(); cfg.num_nodes()];
        for (i, &(from, _, _, _)) in edges.iter().enumerate() {
            out[from as usize].push(i as u32);
        }
        Ok(IterativeDataflow {
            edges,
            out,
            entry_node,
            facts: Vec::new(),
            reachable: Vec::new(),
        })
    }

    /// Runs the worklist to a fixpoint with the given initial facts at the
    /// entry.
    pub fn solve(&mut self, init: u64) {
        let n = self.out.len();
        let mut facts = vec![0u64; n];
        let mut reach = vec![false; n];
        facts[self.entry_node.index()] = init;
        reach[self.entry_node.index()] = true;
        let mut worklist = VecDeque::from([self.entry_node.index() as u32]);
        while let Some(node) = worklist.pop_front() {
            for &e in &self.out[node as usize] {
                let (_, to, g, k) = self.edges[e as usize];
                let transferred = (facts[node as usize] & !k) | g;
                let merged = facts[to as usize] | transferred;
                if merged != facts[to as usize] || !reach[to as usize] {
                    facts[to as usize] = merged;
                    reach[to as usize] = true;
                    worklist.push_back(to);
                }
            }
        }
        self.facts = facts;
        self.reachable = reach;
    }

    /// The facts that may hold at a node.
    ///
    /// # Panics
    ///
    /// Panics if called before [`IterativeDataflow::solve`].
    pub fn facts_at(&self, n: NodeId) -> u64 {
        assert!(!self.facts.is_empty(), "call solve() first");
        self.facts[n.index()]
    }

    /// Whether the node was reached.
    pub fn reachable(&self, n: NodeId) -> bool {
        self.reachable.get(n.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_cfgir::Program;

    fn setup(src: &str) -> (Cfg, GenKillSpec) {
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let mut spec = GenKillSpec::new();
        let x = spec.fact("x");
        let y = spec.fact("y");
        spec.event("def_x", &[x], &[]);
        spec.event("kill_x", &[], &[x]);
        spec.event("def_y", &[y], &[]);
        (cfg, spec)
    }

    #[test]
    fn agrees_with_hand_computation() {
        let (cfg, spec) = setup(
            "fn main() { a: event def_x; if (*) { event kill_x; } m: event def_y; n: skip; }",
        );
        let mut df = IterativeDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve(0);
        assert_eq!(df.facts_at(cfg.label_after("a").unwrap()), 0b01);
        // At m: x may or may not have been killed ⇒ may-facts contain x.
        assert_eq!(df.facts_at(cfg.label_node("m").unwrap()), 0b01);
        assert_eq!(df.facts_at(cfg.label_after("m").unwrap()), 0b11);
    }

    #[test]
    fn context_insensitive_imprecision_demonstrated() {
        // The exact scenario where the constraint-based engine is more
        // precise: the iterative engine leaks x through f's second return.
        let (cfg, spec) = setup(
            "fn f() { skip; }
             fn main() {
                 event def_x; f(); event kill_x; f(); q: skip;
             }",
        );
        let mut df = IterativeDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve(0);
        assert_eq!(
            df.facts_at(cfg.label_node("q").unwrap()) & 1,
            1,
            "context-insensitive: x flows through the merged return"
        );
    }

    #[test]
    fn initial_facts_propagate() {
        let (cfg, spec) = setup("fn main() { p: event kill_x; q: skip; }");
        let mut df = IterativeDataflow::new(&cfg, &spec, "main").unwrap();
        df.solve(0b11);
        assert_eq!(df.facts_at(cfg.label_node("p").unwrap()), 0b11);
        assert_eq!(df.facts_at(cfg.label_after("p").unwrap()), 0b10);
    }
}
