//! Gen/kill analysis specifications.

use std::collections::HashMap;

/// A bit-vector analysis specification: named facts (at most 64) and the
/// gen/kill effect of each MiniImp event.
///
/// Events not mentioned have no effect (identity transfer).
#[derive(Debug, Clone, Default)]
pub struct GenKillSpec {
    facts: Vec<String>,
    events: HashMap<String, (u64, u64)>,
}

impl GenKillSpec {
    /// An empty specification.
    pub fn new() -> GenKillSpec {
        GenKillSpec::default()
    }

    /// Declares (or looks up) a fact, returning its bit index.
    ///
    /// # Panics
    ///
    /// Panics when more than 64 facts are declared.
    pub fn fact(&mut self, name: &str) -> usize {
        if let Some(i) = self.facts.iter().position(|f| f == name) {
            return i;
        }
        assert!(self.facts.len() < 64, "at most 64 dataflow facts");
        self.facts.push(name.to_owned());
        self.facts.len() - 1
    }

    /// Number of declared facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// The name of a fact.
    pub fn fact_name(&self, i: usize) -> &str {
        &self.facts[i]
    }

    /// Declares the effect of an event: it *gens* the facts in `gens` and
    /// *kills* those in `kills`.
    pub fn event(&mut self, name: &str, gens: &[usize], kills: &[usize]) -> &mut Self {
        let gen_mask = gens.iter().fold(0u64, |m, &i| m | (1 << i));
        let kill_mask = kills.iter().fold(0u64, |m, &i| m | (1 << i));
        let entry = self.events.entry(name.to_owned()).or_insert((0, 0));
        entry.0 |= gen_mask;
        entry.1 |= kill_mask;
        self
    }

    /// The `(gen, kill)` masks of an event, if it is relevant.
    pub fn effect(&self, event: &str) -> Option<(u64, u64)> {
        self.events.get(event).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_are_interned() {
        let mut spec = GenKillSpec::new();
        let x = spec.fact("x");
        let y = spec.fact("y");
        assert_ne!(x, y);
        assert_eq!(spec.fact("x"), x);
        assert_eq!(spec.num_facts(), 2);
        assert_eq!(spec.fact_name(y), "y");
    }

    #[test]
    fn effects_accumulate() {
        let mut spec = GenKillSpec::new();
        let x = spec.fact("x");
        let y = spec.fact("y");
        spec.event("e", &[x], &[]);
        spec.event("e", &[], &[y]);
        assert_eq!(spec.effect("e"), Some((1 << x, 1 << y)));
        assert_eq!(spec.effect("other"), None);
    }
}
