//! Forward-solver dataflow: one 1-bit machine per fact (§3.3 + §5).
//!
//! The bidirectional engine ([`crate::ConstraintDataflow`]) pays for the
//! product monoid's `3ⁿ` classes; the paper's §5 answer for whole-program
//! analysis is unidirectional solving with the coarser congruence. Here
//! each fact runs on its own Figure 1 machine through the forward solver
//! (`i = |S| = 2` states per fact), which also matches how bit-vector
//! problems decompose classically. Precision is identical to the
//! bidirectional engine — both compute context-sensitive may-facts — which
//! the cross-validation tests assert.

use rasc_automata::{Alphabet, Dfa};
use rasc_cfgir::{Cfg, CfgError, EdgeLabel, NodeId};
use rasc_core::forward::ForwardSystem;
use rasc_core::{ConsId, VarId, Variance};

use crate::spec::GenKillSpec;

/// A context-sensitive forward may-analysis on the forward solver, one
/// run per fact.
#[derive(Debug)]
pub struct ForwardDataflow {
    /// Per-fact `(system, node variables, pc)` triples.
    systems: Vec<(ForwardSystem, Vec<VarId>, ConsId)>,
    facts: Vec<u64>,
}

impl ForwardDataflow {
    /// Builds the analysis for `spec` over `cfg`, starting at `entry`.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::MissingEntry`] if `entry` is missing.
    pub fn new(cfg: &Cfg, spec: &GenKillSpec, entry: &str) -> Result<ForwardDataflow, CfgError> {
        let entry_node = cfg.entry(entry)?.entry;
        let mut systems = Vec::new();
        for fact in 0..spec.num_facts() {
            // Fact-local 1-bit machine: `g` when the fact is genned, `k`
            // when killed.
            let mut sigma = Alphabet::new();
            let g = sigma.intern("g");
            let k = sigma.intern("k");
            let machine = Dfa::one_bit(&sigma, g, k);
            let mut sys = ForwardSystem::new(&machine);
            let vars: Vec<VarId> = (0..cfg.num_nodes())
                .map(|i| sys.var(&format!("S{i}")))
                .collect();
            let pc = sys.constant("pc");
            sys.add_constant(pc, vars[entry_node.index()]);
            for (from, to, label) in cfg.edges() {
                let ann = match label {
                    EdgeLabel::Plain => sys.identity(),
                    EdgeLabel::Event { name, .. } => match spec.effect(name) {
                        Some((gen_mask, kill_mask)) => {
                            let bit = 1u64 << fact;
                            if gen_mask & bit != 0 {
                                sys.word(&[g])
                            } else if kill_mask & bit != 0 {
                                sys.word(&[k])
                            } else {
                                sys.identity()
                            }
                        }
                        None => sys.identity(),
                    },
                };
                sys.add_edge(vars[from.index()], vars[to.index()], ann);
            }
            let eps = sys.identity();
            for site in cfg.call_sites() {
                let callee = &cfg.functions()[site.callee.index()];
                let o_i = sys.declare(&format!("o{}", site.id.index()), &[Variance::Covariant]);
                sys.add_source(
                    o_i,
                    &[vars[site.call_node.index()]],
                    vars[callee.entry.index()],
                    eps,
                )
                .expect("well-formed");
                sys.add_projection(
                    o_i,
                    0,
                    vars[callee.exit.index()],
                    vars[site.return_node.index()],
                    eps,
                )
                .expect("well-formed");
            }
            systems.push((sys, vars, pc));
        }
        Ok(ForwardDataflow {
            systems,
            facts: Vec::new(),
        })
    }

    /// Solves all per-fact systems and assembles the fact vectors.
    pub fn solve(&mut self) {
        let n_nodes = self.systems.first().map_or(0, |(_, vars, _)| vars.len());
        let mut facts = vec![0u64; n_nodes];
        for (fact, (sys, vars, pc)) in self.systems.iter_mut().enumerate() {
            sys.solve();
            let occ = sys.constant_occurrence_states(*pc);
            for (node, &var) in vars.iter().enumerate() {
                if occ[var.index()].iter().any(|&s| sys.state_accepting(s)) {
                    facts[node] |= 1 << fact;
                }
            }
        }
        self.facts = facts;
    }

    /// The facts that may hold at a node.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ForwardDataflow::solve`].
    pub fn facts_at(&self, n: NodeId) -> u64 {
        assert!(!self.facts.is_empty(), "call solve() first");
        self.facts[n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintDataflow;
    use rasc_cfgir::Program;

    fn setup(src: &str) -> (Cfg, GenKillSpec) {
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let mut spec = GenKillSpec::new();
        let x = spec.fact("x");
        let y = spec.fact("y");
        spec.event("def_x", &[x], &[]);
        spec.event("kill_x", &[], &[x]);
        spec.event("def_y", &[y], &[]);
        (cfg, spec)
    }

    #[test]
    fn agrees_with_bidirectional_engine() {
        let programs = [
            "fn main() { a: event def_x; b: event def_y; c: event kill_x; d: skip; }",
            "fn main() { if (*) { event def_x; } else { event def_y; } m: skip; }",
            "fn f() { skip; }
             fn main() { event def_x; f(); p: skip; event kill_x; f(); q: skip; }",
            "fn gen() { event def_x; } fn main() { gen(); p: skip; }",
            "fn main() { while (*) { event def_x; } p: skip; }",
            "fn main() { return; u: event def_x; v: skip; }",
        ];
        for src in programs {
            let (cfg, spec) = setup(src);
            let mut fwd = ForwardDataflow::new(&cfg, &spec, "main").unwrap();
            fwd.solve();
            let mut bidi = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
            bidi.solve();
            for node in 0..cfg.num_nodes() {
                let n = NodeId::from_index(node);
                assert_eq!(fwd.facts_at(n), bidi.facts_at(n), "node {node} of:\n{src}");
            }
        }
    }

    #[test]
    fn context_sensitivity_preserved() {
        let (cfg, spec) = setup(
            "fn f() { skip; }
             fn main() { event def_x; f(); p: skip; event kill_x; f(); q: skip; }",
        );
        let mut fwd = ForwardDataflow::new(&cfg, &spec, "main").unwrap();
        fwd.solve();
        assert_eq!(fwd.facts_at(cfg.label_node("p").unwrap()) & 1, 1);
        assert_eq!(fwd.facts_at(cfg.label_node("q").unwrap()) & 1, 0);
    }
}
