//! A classical backward iterative liveness solver, used as a
//! cross-validation oracle for the backward-congruence engine
//! ([`crate::Liveness`]).

use std::collections::VecDeque;

use rasc_cfgir::{Cfg, EdgeLabel, NodeId};

use crate::liveness::LivenessSpecEntry;

/// Classical backward may-liveness over the CFG (calls treated
/// context-insensitively, matching [`crate::Liveness`]'s fragment): a fact
/// is live at a node when some forward path reaches a use before a def.
#[derive(Debug)]
pub struct IterativeLiveness {
    facts: Vec<String>,
    /// live[fact][node]
    live: Vec<Vec<bool>>,
}

impl IterativeLiveness {
    /// Builds and solves liveness for the given facts over `cfg`.
    pub fn solve(cfg: &Cfg, facts: &[LivenessSpecEntry]) -> IterativeLiveness {
        // Forward adjacency with per-edge (use?, def?) classification per
        // fact, walked backward.
        let n = cfg.num_nodes();
        let mut live_all = Vec::new();
        for entry in facts {
            // Edges: (from, to, effect) where effect: 0 = none, 1 = use,
            // 2 = def (use wins when both, matching the engine).
            let mut edges: Vec<(usize, usize, u8)> = Vec::new();
            for (from, to, label) in cfg.edges() {
                let effect = match label {
                    EdgeLabel::Plain => 0,
                    EdgeLabel::Event { name, .. } => {
                        if entry.uses.contains(name) {
                            1
                        } else if entry.defs.contains(name) {
                            2
                        } else {
                            0
                        }
                    }
                };
                edges.push((from.index(), to.index(), effect));
            }
            for site in cfg.call_sites() {
                let callee = &cfg.functions()[site.callee.index()];
                edges.push((site.call_node.index(), callee.entry.index(), 0));
                edges.push((callee.exit.index(), site.return_node.index(), 0));
            }
            // live(n) = ∃ edge n→m: effect = use, or (effect = none and
            // live(m)). A def edge kills the path.
            let mut live = vec![false; n];
            let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (i, &(from, _, _)) in edges.iter().enumerate() {
                incoming[from].push(i);
                let _ = i;
            }
            let mut work: VecDeque<usize> = VecDeque::new();
            // Seed: sources of use edges.
            for &(from, _, effect) in &edges {
                if effect == 1 && !live[from] {
                    live[from] = true;
                    work.push_back(from);
                }
            }
            // Propagate backward along effect-free edges.
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
            for &(from, to, effect) in &edges {
                if effect == 0 {
                    preds[to].push(from);
                }
            }
            while let Some(node) = work.pop_front() {
                for &p in &preds[node] {
                    if !live[p] {
                        live[p] = true;
                        work.push_back(p);
                    }
                }
            }
            live_all.push(live);
        }
        IterativeLiveness {
            facts: facts.iter().map(|e| e.fact.clone()).collect(),
            live: live_all,
        }
    }

    /// Whether `fact` is live at `n`.
    ///
    /// # Panics
    ///
    /// Panics if `fact` was not declared.
    pub fn live_at(&self, fact: &str, n: NodeId) -> bool {
        let i = self
            .facts
            .iter()
            .position(|f| f == fact)
            .unwrap_or_else(|| panic!("unknown fact `{fact}`"));
        self.live[i][n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Liveness;
    use rasc_cfgir::Program;

    fn spec() -> Vec<LivenessSpecEntry> {
        vec![LivenessSpecEntry {
            fact: "x".to_owned(),
            uses: vec!["use_x".to_owned()],
            defs: vec!["def_x".to_owned()],
        }]
    }

    #[test]
    fn agrees_with_backward_solver_on_hand_programs() {
        let programs = [
            "fn main() { a: skip; b: event use_x; c: skip; }",
            "fn main() { a: skip; b: event def_x; c: event use_x; }",
            "fn main() { if (*) { event def_x; } else { skip; } u: event use_x; }",
            "fn f() { event use_x; } fn main() { a: skip; f(); b: skip; }",
            "fn main() { while (*) { event use_x; event def_x; } done: skip; }",
        ];
        for src in programs {
            let cfg = rasc_cfgir::Cfg::build(&Program::parse(src).unwrap()).unwrap();
            let mut engine = Liveness::new(&cfg, &spec()).unwrap();
            engine.solve();
            let oracle = IterativeLiveness::solve(&cfg, &spec());
            for node in 0..cfg.num_nodes() {
                let n = rasc_cfgir::NodeId::from_index(node);
                assert_eq!(
                    engine.live_at("x", n),
                    oracle.live_at("x", n),
                    "node {node} of:\n{src}"
                );
            }
        }
    }
}
