//! Pushdown model checking (§6): the process-privilege property on the
//! paper's §6.3 example program, checked by both engines — annotated set
//! constraints and direct PDS saturation — with a witness stack.
//!
//! Run with `cargo run --example privilege`.

use rasc::automata::PropertySpec;
use rasc::cfgir::{Cfg, Program};
use rasc::pdmc::{properties, ConstraintChecker};
use rasc::pushdown::PdsChecker;

fn main() {
    // The §6.3 program: privileges are dropped on one branch only.
    let src = r#"
        fn helper() {
            he: event execl;     // the exec actually happens here
            hr: skip;
        }
        fn main() {
            s1: event seteuid_zero;
            if (*) {
                s3: event seteuid_nonzero;
            } else {
                s4: skip;
            }
            s5: helper();
            s6: skip;
        }
    "#;
    let program = Program::parse(src).expect("valid MiniImp");
    let cfg = Cfg::build(&program).expect("valid program");
    println!("program:\n{program}");

    let spec = PropertySpec::parse(properties::SIMPLE_PRIVILEGE).expect("valid spec");

    // Engine 1: regularly annotated set constraints.
    let mut checker = ConstraintChecker::from_spec(&cfg, &spec, "main").expect("main exists");
    checker.solve();
    let violations = checker.violations();
    println!(
        "constraint engine: {} violating program points",
        violations.len()
    );
    assert!(!violations.is_empty(), "the else path keeps privileges");

    // A witness: the ground term's constructor stack is a possible
    // runtime stack at the violation (§6.2).
    let inside = cfg.label_after("he").expect("label exists");
    let witness = checker.witness(inside).expect("violation inside helper");
    println!(
        "witness at the point after execl: stack = {}",
        checker.render_witness(&witness)
    );
    assert_eq!(
        witness.stack.len(),
        1,
        "one unreturned frame (the helper call)"
    );

    // A full event trace for the report (§6.2-style witness reporting).
    let (sigma, dfa) = spec.compile();
    if let Some(steps) = rasc::pdmc::witness_trace(&cfg, &sigma, &dfa, "main", inside) {
        println!("trace: {}", rasc::pdmc::render_trace(&steps));
    }

    // Engine 2: the MOPS-style direct pushdown checker agrees.
    let pds = PdsChecker::new(&cfg, &sigma, &dfa, "main").expect("main exists");
    let pds_violations = pds.run();
    println!(
        "pushdown engine:   {} violating (state, node) heads",
        pds_violations.len()
    );
    assert!(!pds_violations.is_empty());

    // Fixing the program removes the violation in both engines.
    let fixed = Program::parse(
        "fn main() {
            event seteuid_zero;
            event seteuid_nonzero;
            event execl;
        }",
    )
    .unwrap();
    let fixed_cfg = Cfg::build(&fixed).unwrap();
    let mut checker = ConstraintChecker::from_spec(&fixed_cfg, &spec, "main").unwrap();
    checker.solve();
    assert!(!checker.violated());
    assert!(PdsChecker::new(&fixed_cfg, &sigma, &dfa, "main")
        .unwrap()
        .run()
        .is_empty());
    println!("ok: violation found by both engines; fixed program is clean");
}
