//! Interprocedural bit-vector dataflow via gen/kill annotations (§3.3)
//! and backward liveness via the backward solver (§5).
//!
//! Run with `cargo run --example dataflow`.

use rasc::cfgir::{Cfg, Program};
use rasc::dataflow::LivenessSpecEntry;
use rasc::dataflow::{ConstraintDataflow, GenKillSpec, IterativeDataflow, Liveness};

fn main() {
    // A program where context sensitivity matters: `log` is called both
    // while the "dirty" fact holds and after it is cleared.
    let src = r#"
        fn log() { body: skip; }
        fn main() {
            a: event make_dirty;
            log();
            p: skip;
            b: event clear_dirty;
            log();
            q: skip;
        }
    "#;
    let program = Program::parse(src).expect("valid MiniImp");
    let cfg = Cfg::build(&program).expect("valid program");

    let mut spec = GenKillSpec::new();
    let dirty = spec.fact("dirty");
    spec.event("make_dirty", &[dirty], &[]);
    spec.event("clear_dirty", &[], &[dirty]);

    // Context-sensitive constraint engine (the paper's encoding).
    let mut cs = ConstraintDataflow::new(&cfg, &spec, "main").expect("main exists");
    cs.solve();
    // Context-insensitive classical baseline.
    let mut ci = IterativeDataflow::new(&cfg, &spec, "main").expect("main exists");
    ci.solve(0);

    let p = cfg.label_node("p").unwrap();
    let q = cfg.label_node("q").unwrap();
    println!("may 'dirty' hold?        constraints  iterative");
    println!(
        "  after first log() (p):   {:<11} {}",
        cs.facts_at(p) & 1 == 1,
        ci.facts_at(p) & 1 == 1
    );
    println!(
        "  after second log() (q):  {:<11} {}",
        cs.facts_at(q) & 1 == 1,
        ci.facts_at(q) & 1 == 1
    );
    assert_eq!(cs.facts_at(p) & 1, 1);
    assert_eq!(
        cs.facts_at(q) & 1,
        0,
        "call/return matching keeps the first context's fact out of q"
    );
    assert_eq!(
        ci.facts_at(q) & 1,
        1,
        "the context-insensitive baseline merges the two returns"
    );

    // Backward liveness through the backward solver (§5's left
    // congruence): is `x` live at each point?
    let live_src = r#"
        fn main() {
            a: skip;
            b: event def_x;
            c: event use_x;
            d: skip;
        }
    "#;
    let live_program = Program::parse(live_src).unwrap();
    let live_cfg = Cfg::build(&live_program).unwrap();
    let mut live = Liveness::new(
        &live_cfg,
        &[LivenessSpecEntry {
            fact: "x".to_owned(),
            uses: vec!["use_x".to_owned()],
            defs: vec!["def_x".to_owned()],
        }],
    )
    .expect("valid");
    live.solve();
    println!(
        "liveness of x: a={} b={} c={} d={}",
        live.live_at("x", live_cfg.label_node("a").unwrap()),
        live.live_at("x", live_cfg.label_node("b").unwrap()),
        live.live_at("x", live_cfg.label_node("c").unwrap()),
        live.live_at("x", live_cfg.label_node("d").unwrap())
    );
    assert!(
        !live.live_at("x", live_cfg.label_node("a").unwrap()),
        "def shadows"
    );
    assert!(live.live_at("x", live_cfg.label_node("c").unwrap()));
    assert!(!live.live_at("x", live_cfg.label_node("d").unwrap()));
    println!("ok: context-sensitive dataflow and backward liveness agree with hand analysis");
}
