//! Type-based flow analysis (§7): the Figure 11 program under both the
//! primary analysis (calls as terms, type brackets as annotations) and
//! the §7.6 dual (call brackets as annotations, `pair` as a term
//! constructor), plus a stack-aware alias query (§7.5).
//!
//! Run with `cargo run --example flow_analysis`.

use rasc::flow::{DualAnalysis, FlowAnalysis, Program};

fn main() {
    // Figure 11 (non-structural subtyping example):
    //   pair (y:int) : β = (1^A, y^Y)^P
    //   main () : int = (pair^i 2^B).2^V
    let src = r#"
        fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }
        fn main() -> int { pair[i](2@B)@T.2@V }
    "#;
    let program = Program::parse(src).expect("valid MiniLam");

    // Primary analysis: polymorphic recursion + non-structural subtyping.
    let mut primary = FlowAnalysis::new(&program).expect("well-typed");
    primary.solve();
    println!("primary analysis (§7.2, calls = terms, pairs = brackets):");
    for (src, dst) in [("B", "V"), ("A", "V"), ("B", "T"), ("A", "T")] {
        println!("  {src} flows to {dst}: {}", primary.flows(src, dst));
    }
    assert!(primary.flows("B", "V"), "the §7.4 derivation");
    assert!(!primary.flows("A", "V"), "A is the first component");

    // Dual analysis: the same facts via the swapped encoding (§7.6).
    let mut dual = DualAnalysis::new(&program).expect("well-typed");
    dual.solve();
    println!("dual analysis (§7.6, calls = brackets, pairs = terms):");
    for (src, dst) in [("B", "V"), ("A", "V")] {
        println!("  {src} flows to {dst}: {}", dual.flows(src, dst));
    }
    assert_eq!(dual.flows("B", "V"), primary.flows("B", "V"));
    assert_eq!(dual.flows("A", "V"), primary.flows("A", "V"));

    // Stack-aware aliasing (§7.5): two uses of `id` at different sites
    // carry different constants; the context is encoded in the terms, so
    // the results provably do not alias even though the flat value sets
    // both contain "some int literal".
    let alias_src = r#"
        fn id(x: int) -> int { x }
        fn main() -> int { (id[s1](1@ONE)@R1, id[s2](2@TWO)@R2).1 }
    "#;
    let alias_program = Program::parse(alias_src).expect("valid MiniLam");
    let mut alias = FlowAnalysis::new(&alias_program).expect("well-typed");
    alias.solve();
    println!("stack-aware alias queries (§7.5):");
    println!("  R1 alias R1: {}", alias.may_alias("R1", "R1").unwrap());
    println!("  R1 alias R2: {}", alias.may_alias("R1", "R2").unwrap());
    assert!(alias.may_alias("R1", "R1").unwrap());
    assert!(!alias.may_alias("R1", "R2").unwrap());
    assert!(alias.flows("ONE", "R1"));
    assert!(
        !alias.flows("ONE", "R2"),
        "contexts separated by call matching"
    );
    println!("ok: Figure 11 reproduced under both analyses");
}
