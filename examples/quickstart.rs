//! Quickstart: the paper's Example 2.4, worked through the public API.
//!
//! The constraint system (over the 1-bit machine `M_1bit` of Figure 1):
//!
//! ```text
//! c ⊆^g W        o(W) ⊆^g X
//! X ⊆ o(Y)       o(Y) ⊆ Z
//! ```
//!
//! Run with `cargo run --example quickstart`.

use rasc::automata::{Alphabet, Dfa};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{SetExpr, System, Variance};

fn main() {
    // The annotation language: Figure 1's 1-bit gen/kill machine.
    let mut sigma = Alphabet::new();
    let g = sigma.intern("g");
    let k = sigma.intern("k");
    let machine = Dfa::one_bit(&sigma, g, k);

    // A constraint system over the machine's transition monoid.
    let mut sys = System::new(MonoidAlgebra::new(&machine));
    let (w, x, y, z) = (sys.var("W"), sys.var("X"), sys.var("Y"), sys.var("Z"));
    let c = sys.constructor("c", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);

    let fg = sys.algebra_mut().word(&[g]);

    // The four constraints of Example 2.4.
    sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
        .unwrap();
    sys.add_ann(SetExpr::cons_vars(o, [w]), SetExpr::var(x), fg)
        .unwrap();
    sys.add(SetExpr::var(x), SetExpr::cons_vars(o, [y]))
        .unwrap();
    sys.add(SetExpr::cons_vars(o, [y]), SetExpr::var(z))
        .unwrap();
    sys.solve();
    assert!(sys.is_consistent());

    // Solved form: decomposition of o(W) ⊆^g X ⊆ o(Y) gives W ⊆^g Y, and
    // the transitive-closure rule gives c ⊆^{f_g ∘ f_g = f_g} Y.
    println!("solved form facts:");
    for (var, name) in [(w, "W"), (x, "X"), (y, "Y"), (z, "Z")] {
        for (cons, args, ann) in sys.lower_bounds(var) {
            let decl = sys.constructor_decl(cons);
            let rendered_args: Vec<&str> = args.iter().map(|a| sys.var_name(*a)).collect();
            println!(
                "  {}({}) ⊆^{} {}   (accepting: {})",
                decl.name(),
                rendered_args.join(", "),
                sys.algebra().describe(ann),
                name,
                sys.algebra().is_accepting(ann)
            );
        }
    }

    // The query of §3.2: o(c) with an accepting annotation is entailed to
    // be in Z — the least solution is the one given in Example 2.4.
    let witness = sys.occurrence_witness(z, c).expect("c reaches Z");
    println!(
        "query: c occurs in Z wrapped in {} constructor(s), annotation accepting: {}",
        witness.stack.len(),
        sys.algebra().is_accepting(witness.ann)
    );
    assert_eq!(witness.stack.len(), 1, "wrapped in one o(·)");

    // The annotations visible at Y: exactly the f_g class.
    let anns = sys.lower_bound_annotations(y, c);
    assert_eq!(anns.len(), 1);
    assert!(sys.algebra().is_accepting(anns[0]));
    println!("ok: Example 2.4 reproduced");
}
