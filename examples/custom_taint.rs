//! Building a *new* analysis on the framework: interprocedural taint
//! tracking.
//!
//! Nothing here is pre-built in `rasc` — this is what a downstream user
//! writes. The recipe (the same one §6 uses for privilege and §3.3 for
//! dataflow):
//!
//! 1. describe the per-value state machine in the §8 spec language
//!    (taint sources, sanitizers, dangerous sinks);
//! 2. one set variable per program point, `pc` seeded at the entry;
//! 3. property-relevant statements become annotated edges; call/return
//!    matching comes from per-site constructors — context sensitivity for
//!    free;
//! 4. violations are accepting occurrences of `pc`.
//!
//! Run with `cargo run --example custom_taint`.

use rasc::automata::PropertySpec;
use rasc::cfgir::{Cfg, EdgeLabel, Program};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{SetExpr, System, VarId, Variance};

/// The taint discipline: a value read from the network is tainted until
/// sanitized; executing a query with a tainted value is a violation.
const TAINT: &str = "
start state Clean :
    | read_network -> Tainted;

state Tainted :
    | sanitize -> Clean
    | run_query -> Injected;

accept state Injected;
";

fn main() {
    let spec = PropertySpec::parse(TAINT).expect("valid spec");
    let (sigma, machine) = spec.compile();

    // A web handler: the sanitizer runs only on one branch, and the query
    // happens inside a helper two calls deep.
    let src = r#"
        fn run() { q: event run_query; done: skip; }
        fn db_layer() { run(); }
        fn handler() {
            event read_network;
            if (*) { event sanitize; } else { skip; }
            db_layer();
        }
        fn main() {
            while (*) { handler(); }
        }
    "#;
    let program = Program::parse(src).expect("valid MiniImp");
    let cfg = Cfg::build(&program).expect("valid program");

    // --- The whole encoding, by hand, on the public API. ---
    let mut sys = System::new(MonoidAlgebra::new(&machine));
    let vars: Vec<VarId> = (0..cfg.num_nodes())
        .map(|i| sys.var(&format!("S{i}")))
        .collect();
    let pc = sys.constructor("pc", &[]);
    let entry = cfg.entry("main").expect("main exists").entry;
    sys.add(SetExpr::cons(pc, []), SetExpr::var(vars[entry.index()]))
        .expect("well-formed");
    for (from, to, label) in cfg.edges() {
        let ann = match label {
            EdgeLabel::Event { name, .. } => match sigma.lookup(name) {
                Some(sym) => sys.algebra().symbol(sym),
                None => sys.algebra().identity(),
            },
            EdgeLabel::Plain => sys.algebra().identity(),
        };
        sys.add_ann(
            SetExpr::var(vars[from.index()]),
            SetExpr::var(vars[to.index()]),
            ann,
        )
        .expect("well-formed");
    }
    for site in cfg.call_sites() {
        let callee = &cfg.functions()[site.callee.index()];
        let o_i = sys.constructor(&format!("o{}", site.id.index()), &[Variance::Covariant]);
        sys.add(
            SetExpr::cons_vars(o_i, [vars[site.call_node.index()]]),
            SetExpr::var(vars[callee.entry.index()]),
        )
        .expect("well-formed");
        sys.add(
            SetExpr::proj(o_i, 0, vars[callee.exit.index()]),
            SetExpr::var(vars[site.return_node.index()]),
        )
        .expect("well-formed");
    }
    sys.solve();

    // Query: can an injected state reach the point after the query?
    let occ = sys.constant_occurrence_map(pc);
    let injected: Vec<usize> = (0..cfg.num_nodes())
        .filter(|&n| {
            occ[vars[n].index()]
                .iter()
                .any(|&a| sys.algebra().is_accepting(a))
        })
        .collect();
    println!(
        "program points reachable with an injected query: {}",
        injected.len()
    );
    let after_query = cfg.label_node("done").expect("label exists");
    assert!(
        injected.contains(&after_query.index()),
        "the unsanitized branch reaches run_query tainted"
    );

    // The witness term's constructors are the runtime stack (§6.2): the
    // violation is two frames deep (handler's db_layer call, db_layer's
    // run call — the handler itself was entered from main's loop).
    let w = sys
        .occurrence_witness(vars[after_query.index()], pc)
        .expect("violation");
    println!(
        "witness stack depth: {} (pc wrapped per unreturned call)",
        w.stack.len()
    );
    assert!(w.stack.len() >= 2);

    // Sanitizing on every path fixes it.
    let fixed_src = src.replace(
        "if (*) { event sanitize; } else { skip; }",
        "event sanitize;",
    );
    let fixed = Program::parse(&fixed_src).unwrap();
    let fixed_cfg = Cfg::build(&fixed).unwrap();
    let mut sys2 = System::new(MonoidAlgebra::new(&machine));
    let vars2: Vec<VarId> = (0..fixed_cfg.num_nodes())
        .map(|i| sys2.var(&format!("S{i}")))
        .collect();
    let pc2 = sys2.constructor("pc", &[]);
    let entry2 = fixed_cfg.entry("main").unwrap().entry;
    sys2.add(SetExpr::cons(pc2, []), SetExpr::var(vars2[entry2.index()]))
        .unwrap();
    for (from, to, label) in fixed_cfg.edges() {
        let ann = match label {
            EdgeLabel::Event { name, .. } => match sigma.lookup(name) {
                Some(sym) => sys2.algebra().symbol(sym),
                None => sys2.algebra().identity(),
            },
            EdgeLabel::Plain => sys2.algebra().identity(),
        };
        sys2.add_ann(
            SetExpr::var(vars2[from.index()]),
            SetExpr::var(vars2[to.index()]),
            ann,
        )
        .unwrap();
    }
    for site in fixed_cfg.call_sites() {
        let callee = &fixed_cfg.functions()[site.callee.index()];
        let o_i = sys2.constructor(&format!("o{}", site.id.index()), &[Variance::Covariant]);
        sys2.add(
            SetExpr::cons_vars(o_i, [vars2[site.call_node.index()]]),
            SetExpr::var(vars2[callee.entry.index()]),
        )
        .unwrap();
        sys2.add(
            SetExpr::proj(o_i, 0, vars2[callee.exit.index()]),
            SetExpr::var(vars2[site.return_node.index()]),
        )
        .unwrap();
    }
    sys2.solve();
    let occ2 = sys2.constant_occurrence_map(pc2);
    let any_injected = (0..fixed_cfg.num_nodes()).any(|n| {
        occ2[vars2[n].index()]
            .iter()
            .any(|&a| sys2.algebra().is_accepting(a))
    });
    assert!(!any_injected, "sanitizing on every path removes the risk");
    println!("ok: custom taint analysis found the bug and cleared the fix");
}
