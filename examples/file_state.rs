//! Parametric annotations (§6.4): the file-state property of Figure 5 on
//! the Figure 6 program. The parameter `x` in `open(x)`/`close(x)` is
//! instantiated on the fly via substitution environments; the analysis
//! reports exactly which descriptor is still open.
//!
//! Run with `cargo run --example file_state`.

use rasc::automata::PropertySpec;
use rasc::cfgir::{Cfg, Program};
use rasc::pdmc::{properties, ConstraintChecker};

fn main() {
    // Figure 6: two descriptors, one close.
    let src = r#"
        fn main() {
            s1: event open(fd1);
            s2: event open(fd2);
            s3: event close(fd1);
            s4: skip;
        }
    "#;
    let program = Program::parse(src).expect("valid MiniImp");
    let cfg = Cfg::build(&program).expect("valid program");

    let spec = PropertySpec::parse(properties::FILE_STATE).expect("valid spec");
    assert!(spec.is_parametric());

    let mut checker = ConstraintChecker::parametric(&cfg, &spec, "main").expect("main exists");
    checker.solve();

    // The pc's annotation at the end of the program is a substitution
    // environment φ₃ ∘ φ₂ ∘ φ₁ = [(x: fd1) ↦ f₂; (x: fd2) ↦ f₁ | f_ε]
    // (Figure 7's composition).
    let end = cfg.label_after("s4").expect("label exists");
    let anns = checker.pc_annotations(end);
    assert_eq!(anns.len(), 1, "one path class");
    {
        use rasc::constraints::algebra::Algebra;
        let alg = checker.system().algebra();
        println!("environment at the end: {}", alg.describe(anns[0]));
        let open = alg.accepting_instances(anns[0]);
        println!("descriptors still open:");
        for (key, _) in &open {
            for (p, l) in key {
                println!("  {} = {}", alg.param_name(*p), alg.label_name(*l));
            }
        }
        assert_eq!(open.len(), 1);
        let (key, _) = &open[0];
        let label = *key.values().next().expect("one parameter");
        assert_eq!(alg.label_name(label), "fd2", "fd2 leaked, fd1 was closed");
    }

    // After closing fd2 as well, nothing is open.
    let fixed = Program::parse(
        "fn main() {
            event open(fd1);
            event open(fd2);
            event close(fd1);
            event close(fd2);
            end: skip;
        }",
    )
    .unwrap();
    let fixed_cfg = Cfg::build(&fixed).unwrap();
    let mut checker = ConstraintChecker::parametric(&fixed_cfg, &spec, "main").unwrap();
    checker.solve();
    // Note: for a liveness-style property like file state, "accepting" at
    // an intermediate point just means a file is open there — only the
    // exit matters for leak detection.
    let end = fixed_cfg.label_after("end").unwrap();
    let anns = checker.pc_annotations(end);
    {
        use rasc::constraints::algebra::Algebra;
        let alg = checker.system().algebra();
        assert!(
            anns.iter().all(|&a| !alg.is_accepting(a)),
            "nothing open at exit"
        );
    }
    println!("ok: fd2 reported leaked; fully-closed variant is clean");
}
