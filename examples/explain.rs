//! Provenance: *why* does the solver believe what it believes?
//!
//! The paper's Example 2.4 again (over the 1-bit machine of Figure 1):
//!
//! ```text
//! c ⊆^g W        o(W) ⊆^g X
//! X ⊆ o(Y)       o(Y) ⊆ Z
//! ```
//!
//! Solving derives `c ⊆^{f_g} Y`: decomposition of `o(W) ⊆^g X ⊆ o(Y)`
//! yields the transitive edge `W ⊆^{f_g} Y`, and pushing the lower bound
//! `c ⊆^g W` across it composes `f_g ∘ f_g = f_g`. With provenance
//! recording enabled, `System::explain` walks that derivation back to
//! the surface constraints — the same facility behind the batch
//! protocol's `{"cmd":"explain",…}`.
//!
//! Run with `cargo run --example explain`.

use rasc::automata::{Alphabet, Dfa};
use rasc::constraints::algebra::MonoidAlgebra;
use rasc::constraints::{SetExpr, System, Variance};

fn main() {
    let mut sigma = Alphabet::new();
    let g = sigma.intern("g");
    let k = sigma.intern("k");
    let machine = Dfa::one_bit(&sigma, g, k);

    let mut sys = System::new(MonoidAlgebra::new(&machine));
    // Recording must be on before the derivations we want to explain.
    sys.enable_provenance();

    let (w, x, y, z) = (sys.var("W"), sys.var("X"), sys.var("Y"), sys.var("Z"));
    let c = sys.constructor("c", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    let fg = sys.algebra_mut().word(&[g]);

    sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
        .unwrap();
    sys.add_ann(SetExpr::cons_vars(o, [w]), SetExpr::var(x), fg)
        .unwrap();
    sys.add(SetExpr::var(x), SetExpr::cons_vars(o, [y]))
        .unwrap();
    sys.add(SetExpr::cons_vars(o, [y]), SetExpr::var(z))
        .unwrap();
    sys.solve();
    assert!(sys.is_consistent());

    println!("why is c in Y's solution?");
    let steps = sys.explain(y, c);
    assert!(!steps.is_empty(), "c ⊆^{{f_g}} Y must be derivable");
    for (i, step) in steps.iter().enumerate() {
        let cite = match step.constraint {
            Some(ix) => format!(" [constraint #{ix}]"),
            None => String::new(),
        };
        println!("  {i}. ({}){cite} {}", step.rule, step.description);
    }

    // And a non-answer stays a non-answer: X's lower bounds hold o(…),
    // never the constant c, so there is nothing to explain.
    assert!(sys.explain(x, c).is_empty());
    println!("\nwhy is c in X's solution? — it isn't (empty chain).");
}
