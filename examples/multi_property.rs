//! Checking several security properties in one pass (§2.2): regular
//! languages are closed under products, so one machine — and one solver
//! run — tracks the privilege, chroot-jail, and temp-file disciplines
//! simultaneously.
//!
//! Run with `cargo run --example multi_property`.

use rasc::automata::PropertySpec;
use rasc::cfgir::{Cfg, Program};
use rasc::pdmc::{properties, ConstraintChecker};

fn main() {
    let specs = [
        PropertySpec::parse(properties::SIMPLE_PRIVILEGE).unwrap(),
        PropertySpec::parse(properties::CHROOT_JAIL).unwrap(),
        PropertySpec::parse(properties::TEMP_FILE_RACE).unwrap(),
    ];
    let refs: Vec<&PropertySpec> = specs.iter().collect();
    let (sigma, combined) = properties::combine_specs(&refs);
    println!(
        "combined machine: {} states over {} symbols (minimized: {})",
        combined.len(),
        sigma.len(),
        combined.minimize().len()
    );

    // A daemon that gets the jail right but botches the privilege drop on
    // one path.
    let src = r#"
        fn enter_jail() { event chroot; event chdir_root; }
        fn main() {
            event seteuid_zero;
            enter_jail();
            if (*) { event seteuid_nonzero; } else { skip; }
            event fs_op;
            e: event execl;
            end: skip;
        }
    "#;
    let program = Program::parse(src).expect("valid MiniImp");
    let cfg = Cfg::build(&program).expect("valid program");
    let mut checker = ConstraintChecker::new(&cfg, &sigma, &combined, "main").expect("main exists");
    checker.solve();
    let violations = checker.violations();
    println!("violating program points: {}", violations.len());
    let end = cfg.label_node("end").unwrap();
    assert!(
        violations.contains(&end),
        "the else branch reaches the exec privileged"
    );
    // The jail discipline alone is satisfied: checking only chroot-jail
    // reports nothing.
    let jail = PropertySpec::parse(properties::CHROOT_JAIL).unwrap();
    let mut jail_only = ConstraintChecker::from_spec(&cfg, &jail, "main").unwrap();
    jail_only.solve();
    assert!(!jail_only.violated(), "chdir_root fixes the jail");

    // A witness trace through the combined machine.
    let trace = rasc::pdmc::witness_trace(&cfg, &sigma, &combined, "main", end)
        .expect("violation has a trace");
    println!("witness: {}", rasc::pdmc::render_trace(&trace));
    println!("ok: one combined pass found the privilege bug and cleared the jail discipline");
}
