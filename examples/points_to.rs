//! Stack-aware points-to analysis (§7.5): the paper's exact C example,
//! plus the "wrapped allocation function" refactoring it motivates.
//!
//! Run with `cargo run --example points_to`.

use rasc::ptr::{PointsTo, Program};

fn main() {
    // The paper's example:
    //   void main() { int a,b; foo¹(&a,&b); foo²(&b,&a); }
    //   void foo(int *x, int *y) { /* May x and y be aliased? */ }
    let src = r#"
        fn foo(x, y) { }
        fn main() {
            foo(&a, &b);
            foo(&b, &a);
        }
    "#;
    let program = Program::parse(src).expect("valid MiniPtr");
    let mut pt = PointsTo::analyze(&program).expect("analysis succeeds");

    println!("flat points-to sets:");
    println!("  pt(foo::x) = {:?}", pt.points_to("foo::x").unwrap());
    println!("  pt(foo::y) = {:?}", pt.points_to("foo::y").unwrap());
    println!(
        "  flat may-alias(x, y)        = {}",
        pt.may_alias("foo::x", "foo::y").unwrap()
    );
    println!("context-sensitive term sets (the constraint solutions, §7.5):");
    println!("  X = {:?}", pt.points_to_terms("foo::x").unwrap());
    println!("  Y = {:?}", pt.points_to_terms("foo::y").unwrap());
    println!(
        "  stack-aware may-alias(x, y) = {}",
        pt.may_alias_stack_aware("foo::x", "foo::y").unwrap()
    );
    assert!(pt.may_alias("foo::x", "foo::y").unwrap());
    assert!(!pt.may_alias_stack_aware("foo::x", "foo::y").unwrap());

    // The paper's motivating refactoring problem: wrapping an allocation
    // function destroys allocation-site precision for flat analyses…
    let wrapped = r#"
        fn my_malloc() { m = alloc; return m; }
        fn mkpair(p, q) { }
        fn main() {
            x = my_malloc();
            y = my_malloc();
            mkpair(&x, &y);
        }
    "#;
    let program = Program::parse(wrapped).expect("valid MiniPtr");
    let mut pt = PointsTo::analyze(&program).expect("analysis succeeds");
    // Both x and y flatly point to the one allocation site inside the
    // wrapper — the imprecision the paper describes. Stack-aware queries
    // on the *pointers to* x and y still distinguish them, because the
    // &x/&y locations are distinct:
    println!();
    println!("wrapped-allocator program:");
    println!("  pt(main::x) = {:?}", pt.points_to("main::x").unwrap());
    println!("  pt(main::y) = {:?}", pt.points_to("main::y").unwrap());
    assert_eq!(
        pt.points_to("main::x").unwrap(),
        pt.points_to("main::y").unwrap(),
        "allocation-site abstraction merges the two allocations"
    );
    assert!(
        !pt.may_alias_stack_aware("mkpair::p", "mkpair::q").unwrap(),
        "&x and &y are distinct locations regardless"
    );
    println!("ok: §7.5 reproduced (flat alias yes, stack-aware alias no)");
}
