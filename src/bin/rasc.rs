//! The `rasc` command-line interface.
//!
//! ```text
//! rasc check      --spec FILE --program FILE [--entry NAME] [--engine E] [--trace]
//! rasc dataflow   --program FILE --fact NAME=GEN/KILL … [--at LABEL]
//! rasc flow       --program FILE --from LABEL --to LABEL [--dual] [--pn]
//! rasc points-to  --program FILE [--sets] [--alias X Y] [--stack-aware]
//! rasc spec       --spec FILE [--dot] [--monoid]
//! rasc cfg        --program FILE [--dot]
//! rasc batch      --spec FILE [--input FILE] [--trace FILE] [--profile]
//! rasc serve      --spec FILE [--addr HOST:PORT] [--threads N] [--solve-threads N]
//!                 [--limits SPEC] [--max-connections N] [--snapshot-dir DIR]
//!                 [--trace FILE] [--profile] [--admin-addr HOST:PORT] [--slow-millis N]
//! rasc stats      --addr HOST:PORT [--metrics] [--watch SECS]
//! rasc snapshot   --spec FILE --out SNAP [--input FILE]
//! rasc restore    --spec FILE --snapshot SNAP [--input FILE]
//! ```
//!
//! `check` verifies a §8-syntax property specification against a MiniImp
//! program; `flow` runs the §7 type-based flow analysis on a MiniLam
//! program; `points-to` runs the §7.5 analysis on a MiniPtr program;
//! `batch` runs an incremental solving session over a JSON-lines command
//! stream (see `rasc::inc::BatchEngine` for the protocol); its `--trace`
//! flag writes a Chrome trace-event file (load it in Perfetto or
//! `chrome://tracing`) and `--profile` prints an event-count summary to
//! stderr when the stream ends.
//!
//! `serve` exposes the same protocol over TCP (one session per
//! connection; see `rasc::serve`): `--threads` sizes the worker pool,
//! `--solve-threads N` solves each large `add` batch on N solver threads
//! (deterministic — answers and snapshots are byte-identical to the
//! sequential solver), `--max-connections` caps admission, and `--limits
//! steps=N,millis=N,terms=N,entries=N` sets server-wide per-request
//! resource caps. The server drains gracefully when any client sends
//! `{"cmd":"shutdown"}` or on SIGINT/SIGTERM; with `--snapshot-dir DIR`
//! it warm-starts every connection from `DIR/current.snap`, routes
//! in-band `{"cmd":"snapshot"}` commands there, and checkpoints on
//! graceful shutdown. `--trace`/`--profile` work as in `batch`.
//! `--admin-addr` opens the telemetry plane — an HTTP listener
//! answering `GET /metrics` (Prometheus text), `GET /stats` (JSON
//! with quantile estimates), and `GET /healthz` — and `--slow-millis N`
//! appends every request at or over N milliseconds to a slow-query log
//! on stderr (one JSON line per slow request).
//!
//! `stats` polls a running server's admin endpoint: it prints the
//! `GET /stats` JSON body (or the raw `/metrics` exposition page with
//! `--metrics`) once, or repeatedly every `--watch SECS` seconds.
//!
//! `snapshot` runs a batch command stream and then persists the solved
//! form to a crash-safe snapshot file; `restore` reloads such a file and
//! runs a (typically query-only) stream against it without re-solving —
//! the warm-restart path.

use std::collections::HashMap;
use std::process::ExitCode;

use rasc::automata::{Monoid, PropertySpec};
use rasc::cfgir::Cfg;
use rasc::dataflow::{ConstraintDataflow, GenKillSpec};
use rasc::flow::{DualAnalysis, FlowAnalysis};
use rasc::pdmc::{render_trace, witness_trace, ConstraintChecker};
use rasc::ptr::PointsTo;
use rasc::pushdown::PdsChecker;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rasc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let opts = parse_opts(cmd, &args[1..])?;
    match cmd.as_str() {
        "check" => check(&opts),
        "dataflow" => dataflow(&opts),
        "flow" => flow(&opts),
        "points-to" => points_to(&opts),
        "spec" => spec_cmd(&opts),
        "cfg" => cfg_cmd(&opts),
        "batch" => batch(&opts),
        "serve" => serve(&opts),
        "stats" => stats_cmd(&opts),
        "snapshot" => snapshot_cmd(&opts),
        "restore" => restore_cmd(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     rasc check      --spec FILE --program FILE [--entry NAME] [--engine constraints|forward|pushdown] [--trace]\n  \
     rasc dataflow   --program FILE --fact NAME=GEN/KILL ... [--at LABEL]\n  \
     rasc flow       --program FILE --from LABEL --to LABEL [--dual] [--pn]\n  \
     rasc points-to  --program FILE [--sets] [--alias X Y] [--stack-aware]\n  \
     rasc spec       --spec FILE [--dot] [--monoid]\n  \
     rasc cfg        --program FILE [--dot]\n  \
     rasc batch      --spec FILE [--input FILE] [--trace FILE] [--profile]   (JSON-lines commands on stdin or FILE)\n  \
     rasc serve      --spec FILE [--addr HOST:PORT] [--threads N] [--solve-threads N] [--limits steps=N,millis=N,terms=N,entries=N] [--max-connections N] [--snapshot-dir DIR] [--trace FILE] [--profile] [--admin-addr HOST:PORT] [--slow-millis N]\n  \
     rasc stats      --addr HOST:PORT [--metrics] [--watch SECS]   (poll a running server's admin endpoint)\n  \
     rasc snapshot   --spec FILE --out SNAP [--input FILE]   (run a command stream, then persist the solved form)\n  \
     rasc restore    --spec FILE --snapshot SNAP [--input FILE]   (reload a solved form, then run a command stream)"
        .to_owned()
}

#[derive(Debug, Default)]
struct Opts {
    flags: Vec<String>,
    values: HashMap<String, Vec<String>>,
}

impl Opts {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    fn values(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.value(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }
}

/// Options taking N values (everything else is a flag). Arity is
/// per-command: `check --trace` is a bare flag (print a witness trace),
/// while `batch --trace FILE` names the trace-event output file.
fn arity(cmd: &str, name: &str) -> usize {
    match name {
        "spec" | "program" | "entry" | "engine" | "fact" | "from" | "to" | "at" | "input" => 1,
        "trace" if cmd == "batch" || cmd == "serve" => 1,
        "threads" | "solve-threads" | "limits" | "max-connections" | "snapshot-dir"
        | "admin-addr" | "slow-millis"
            if cmd == "serve" =>
        {
            1
        }
        "addr" if cmd == "serve" || cmd == "stats" => 1,
        "watch" if cmd == "stats" => 1,
        "out" if cmd == "snapshot" => 1,
        "snapshot" if cmd == "restore" => 1,
        "alias" => 2,
        _ => 0,
    }
}

fn parse_opts(cmd: &str, args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        let n = arity(cmd, name);
        if n == 0 {
            opts.flags.push(name.to_owned());
            i += 1;
        } else {
            if i + 1 + n > args.len() {
                return Err(format!("--{name} expects {n} value(s)"));
            }
            let vals: Vec<String> = args[i + 1..i + 1 + n].to_vec();
            if vals.iter().any(|v| v.starts_with("--")) {
                return Err(format!("--{name} expects {n} value(s)"));
            }
            opts.values.entry(name.to_owned()).or_default().extend(vals);
            i += 1 + n;
        }
    }
    Ok(opts)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn check(opts: &Opts) -> Result<(), String> {
    let spec_text = read(opts.required("spec")?)?;
    let program_text = read(opts.required("program")?)?;
    let entry = opts.value("entry").unwrap_or("main");
    let engine = opts.value("engine").unwrap_or("constraints");

    let spec = PropertySpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let program = rasc::cfgir::Program::parse(&program_text).map_err(|e| e.to_string())?;
    let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
    let (sigma, dfa) = spec.compile();

    let violations: Vec<rasc::cfgir::NodeId> = match engine {
        "constraints" => {
            if spec.is_parametric() {
                let mut checker =
                    ConstraintChecker::parametric(&cfg, &spec, entry).map_err(|e| e.to_string())?;
                checker.solve();
                checker.violations()
            } else {
                let mut checker =
                    ConstraintChecker::new(&cfg, &sigma, &dfa, entry).map_err(|e| e.to_string())?;
                checker.solve();
                checker.violations()
            }
        }
        "forward" | "pushdown" => {
            // The PDS checker serves both names here; `forward` users want
            // the faster engine, which for the CLI's purposes is the
            // saturation checker.
            let checker = PdsChecker::new(&cfg, &sigma, &dfa, entry).map_err(|e| e.to_string())?;
            let mut nodes: Vec<_> = checker.run().into_iter().map(|v| v.node).collect();
            nodes.sort();
            nodes.dedup();
            nodes
        }
        other => return Err(format!("unknown engine `{other}`")),
    };

    if violations.is_empty() {
        println!(
            "ok: property holds ({} program points checked)",
            cfg.num_nodes()
        );
        return Ok(());
    }
    println!(
        "VIOLATION: {} program point(s) can reach an error state",
        violations.len()
    );
    if opts.flag("trace") {
        if let Some(first) = violations.first() {
            match witness_trace(&cfg, &sigma, &dfa, entry, *first) {
                Some(steps) => println!("witness: {}", render_trace(&steps)),
                None => println!("witness: (parametric property — no single-machine trace)"),
            }
        }
    }
    Err(format!("{} violation(s) found", violations.len()))
}

fn dataflow(opts: &Opts) -> Result<(), String> {
    let program_text = read(opts.required("program")?)?;
    let program = rasc::cfgir::Program::parse(&program_text).map_err(|e| e.to_string())?;
    let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
    let mut spec = GenKillSpec::new();
    let mut fact_names = Vec::new();
    for decl in opts.values("fact") {
        // NAME=GEN/KILL, e.g. x=def_x/kill_x
        let (name, rest) = decl
            .split_once('=')
            .ok_or_else(|| format!("bad --fact `{decl}` (want NAME=GEN/KILL)"))?;
        let (gen, kill) = rest
            .split_once('/')
            .ok_or_else(|| format!("bad --fact `{decl}` (want NAME=GEN/KILL)"))?;
        let f = spec.fact(name);
        spec.event(gen, &[f], &[]);
        spec.event(kill, &[], &[f]);
        fact_names.push(name.to_owned());
    }
    if fact_names.is_empty() {
        return Err("at least one --fact NAME=GEN/KILL is required".to_owned());
    }
    let mut df = ConstraintDataflow::new(&cfg, &spec, "main").map_err(|e| e.to_string())?;
    df.solve();
    match opts.value("at") {
        Some(label) => {
            let node = cfg
                .label_node(label)
                .ok_or_else(|| format!("no statement labeled `{label}`"))?;
            let bits = df.facts_at(node);
            let holding: Vec<&str> = fact_names
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            println!("at `{label}`: {{{}}}", holding.join(", "));
        }
        None => {
            println!(
                "solved {} facts over {} program points",
                fact_names.len(),
                cfg.num_nodes()
            );
        }
    }
    Ok(())
}

fn flow(opts: &Opts) -> Result<(), String> {
    let program_text = read(opts.required("program")?)?;
    let from = opts.required("from")?;
    let to = opts.required("to")?;
    let program = rasc::flow::Program::parse(&program_text).map_err(|e| e.to_string())?;
    let (matched, pn) = if opts.flag("dual") {
        let mut d = DualAnalysis::new(&program).map_err(|e| e.to_string())?;
        d.solve();
        d.label_var(from).map_err(|e| e.to_string())?;
        d.label_var(to).map_err(|e| e.to_string())?;
        (d.flows(from, to), d.flows_pn(from, to))
    } else {
        let mut a = FlowAnalysis::new(&program).map_err(|e| e.to_string())?;
        a.solve();
        a.label_var(from).map_err(|e| e.to_string())?;
        a.label_var(to).map_err(|e| e.to_string())?;
        (a.flows(from, to), a.flows_pn(from, to))
    };
    if opts.flag("pn") {
        println!("{from} flows to {to} (PN): {pn}");
    } else {
        println!("{from} flows to {to} (matched): {matched}");
    }
    Ok(())
}

fn points_to(opts: &Opts) -> Result<(), String> {
    let program_text = read(opts.required("program")?)?;
    let program = rasc::ptr::Program::parse(&program_text).map_err(|e| e.to_string())?;
    let mut pt = PointsTo::analyze(&program).map_err(|e| e.to_string())?;
    let alias = opts.values("alias");
    if alias.len() == 2 {
        let (x, y) = (&alias[0], &alias[1]);
        let result = if opts.flag("stack-aware") {
            pt.may_alias_stack_aware(x, y).map_err(|e| e.to_string())?
        } else {
            pt.may_alias(x, y).map_err(|e| e.to_string())?
        };
        println!("may-alias({x}, {y}) = {result}");
    }
    if opts.flag("sets") {
        for f in &program.funs {
            let mut vars: Vec<String> = f.params.clone();
            for s in &f.stmts {
                if let rasc::ptr::Stmt::AddrOf { dst, .. }
                | rasc::ptr::Stmt::Copy { dst, .. }
                | rasc::ptr::Stmt::Load { dst, .. }
                | rasc::ptr::Stmt::Alloc { dst }
                | rasc::ptr::Stmt::FieldLoad { dst, .. } = s
                {
                    vars.push(dst.clone());
                }
            }
            vars.sort();
            vars.dedup();
            for v in vars {
                let key = format!("{}::{v}", f.name);
                if let Ok(set) = pt.points_to(&key) {
                    println!("pt({key}) = {{{}}}", set.join(", "));
                }
            }
        }
    }
    Ok(())
}

/// The `--trace`/`--profile` observability sinks shared by `batch` and
/// `serve`: a Chrome trace-event collector, an in-memory recorder, and
/// the single (possibly fanned-out) sink combining whichever were
/// requested.
struct ObsSetup {
    chrome: Option<std::sync::Arc<rasc::obs::ChromeTraceSink>>,
    recorder: Option<std::sync::Arc<rasc::obs::Recorder>>,
    sink: Option<std::sync::Arc<dyn rasc::obs::EventSink>>,
}

impl ObsSetup {
    fn from_opts(opts: &Opts) -> ObsSetup {
        use std::sync::Arc;

        use rasc::obs;

        // Arm save-on-drop immediately: if the workload panics or the
        // process unwinds before `finish`, the partial trace is still
        // written as a well-formed (Perfetto-loadable) JSON array. The
        // explicit `save` in `finish` disarms it.
        let chrome = opts.value("trace").map(|path| {
            let sink = Arc::new(obs::ChromeTraceSink::new());
            sink.save_on_drop(std::path::PathBuf::from(path));
            sink
        });
        let recorder = opts.flag("profile").then(|| Arc::new(obs::Recorder::new()));
        let mut sinks: Vec<Arc<dyn obs::EventSink>> = Vec::new();
        if let Some(c) = &chrome {
            sinks.push(Arc::clone(c) as Arc<dyn obs::EventSink>);
        }
        if let Some(r) = &recorder {
            sinks.push(Arc::clone(r) as Arc<dyn obs::EventSink>);
        }
        let sink = match sinks.len() {
            0 => None,
            1 => sinks.pop(),
            _ => Some(Arc::new(obs::Fanout::new(sinks)) as Arc<dyn obs::EventSink>),
        };
        ObsSetup {
            chrome,
            recorder,
            sink,
        }
    }

    /// Saves the Chrome trace (if requested) and prints the recorder
    /// summary (if requested) once the workload is done.
    fn finish(&self, opts: &Opts) -> Result<(), String> {
        if let (Some(sink), Some(path)) = (&self.chrome, opts.value("trace")) {
            sink.save(std::path::Path::new(path))
                .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
            eprintln!("rasc: wrote {} trace events to {path}", sink.len());
        }
        if let Some(r) = &self.recorder {
            eprint!("{}", r.report());
        }
        Ok(())
    }
}

fn batch(opts: &Opts) -> Result<(), String> {
    use rasc::obs;

    let spec_text = read(opts.required("spec")?)?;
    let spec = PropertySpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let (sigma, dfa) = spec.compile();

    // Observability: --trace collects a Chrome trace-event file,
    // --profile an in-memory event summary; both fan out to one scoped
    // sink so instrumentation costs nothing when neither is requested.
    let setup = ObsSetup::from_opts(opts);
    let _guard = setup.sink.clone().map(obs::ScopedSink::install);

    // The framing (one response line per command, flushed immediately so
    // pipe-driven clients never wait on a buffer) is the library's
    // `run_stream`, shared with the TCP serve layer.
    let mut engine = rasc::inc::BatchEngine::new(sigma, &dfa);
    let stdout = std::io::stdout();
    let out = stdout.lock();
    let result = match opts.value("input") {
        Some(path) => engine.run_stream(read(path)?.as_bytes(), out),
        None => {
            let stdin = std::io::stdin();
            engine.run_stream(stdin.lock(), out)
        }
    };
    result.map_err(|e| e.to_string())?;

    setup.finish(opts)
}

fn serve(opts: &Opts) -> Result<(), String> {
    let spec_text = read(opts.required("spec")?)?;
    let spec = PropertySpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let (sigma, dfa) = spec.compile();

    let addr = opts.value("addr").unwrap_or("127.0.0.1:7878");
    let parse_num = |name: &str| -> Result<Option<usize>, String> {
        opts.value(name)
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("--{name} expects a non-negative integer, got `{v}`"))
            })
            .transpose()
    };

    let mut config = rasc::serve::ServeConfig::default();
    if let Some(n) = parse_num("threads")? {
        config.threads = n.max(1);
    }
    if let Some(n) = parse_num("solve-threads")? {
        config.solve_threads = n.max(1);
    }
    if let Some(n) = parse_num("max-connections")? {
        config.max_connections = n.max(1);
    }
    if let Some(spec) = opts.value("limits") {
        config.caps = parse_limits(spec)?;
    }
    if let Some(dir) = opts.value("snapshot-dir") {
        config.snapshot_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(spec) = opts.value("admin-addr") {
        config.admin_addr = Some(spec.to_owned());
    }
    if let Some(v) = opts.value("slow-millis") {
        let n: u64 = v
            .parse()
            .map_err(|_| format!("--slow-millis expects a non-negative integer, got `{v}`"))?;
        config.slow_millis = Some(n);
    }
    // SIGINT/SIGTERM request the same graceful drain as the in-band
    // shutdown command: stop accepting, finish in-flight requests,
    // checkpoint if --snapshot-dir is set, then exit cleanly.
    config.shutdown_flag = signals::install();

    let setup = ObsSetup::from_opts(opts);
    config.sink = setup.sink.clone();

    let server = rasc::serve::Server::bind(addr, sigma, &dfa, config.clone())
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    eprintln!(
        "rasc: serving on {} ({} threads, max {} connections); \
         send {{\"cmd\":\"shutdown\"}} to drain",
        server.local_addr(),
        config.threads,
        config.max_connections
    );
    if let Some(admin) = server.handle().admin_addr() {
        eprintln!("rasc: admin endpoint on http://{admin} (/metrics, /stats, /healthz)");
    }
    let report = server.run().map_err(|e| e.to_string())?;
    eprintln!(
        "rasc: drained — {} connections, {} requests, {} rejected",
        report.connections, report.requests, report.rejected
    );

    setup.finish(opts)
}

/// `rasc stats`: poll a running server's admin endpoint over plain
/// HTTP/1.1 (no client library — the endpoint speaks the minimal subset
/// a raw `TcpStream` exchange needs). Prints the `GET /stats` JSON body,
/// or the raw Prometheus exposition page with `--metrics`; with
/// `--watch SECS` it re-polls forever at that interval.
fn stats_cmd(opts: &Opts) -> Result<(), String> {
    let addr = opts.required("addr")?;
    let path = if opts.flag("metrics") {
        "/metrics"
    } else {
        "/stats"
    };
    let watch: Option<u64> = opts
        .value("watch")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--watch expects a number of seconds, got `{v}`"))
        })
        .transpose()?;
    loop {
        let body = http_get(addr, path)?;
        println!("{}", body.trim_end());
        match watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs.max(1))),
            None => return Ok(()),
        }
    }
}

/// One `GET` against the admin endpoint: connect, send the request,
/// read to EOF (the server answers `Connection: close`), strip the
/// header block, and fail unless the status line says 200.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};

    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("cannot send request to `{addr}`: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("cannot read response from `{addr}`: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from `{addr}`"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("`{addr}{path}` answered `{status}`"));
    }
    Ok(body.to_owned())
}

/// Graceful-shutdown signal wiring for `rasc serve`.
///
/// The handler only flips an atomic flag — the one operation that is
/// async-signal-safe — and the serve layer's accept loop polls it. The
/// raw `signal(2)` FFI lives here, in the binary, because every library
/// crate in the workspace is `#![forbid(unsafe_code)]`.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Installs SIGINT/SIGTERM handlers and returns the flag they set.
    pub fn install() -> Option<Arc<AtomicBool>> {
        let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
        Some(flag)
    }
}

/// On non-Unix targets signals are not wired; ^C terminates the process
/// the default way and no graceful checkpoint happens.
#[cfg(not(unix))]
mod signals {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn install() -> Option<Arc<AtomicBool>> {
        None
    }
}

/// `rasc snapshot`: run a batch command stream (responses to stdout,
/// exactly as `rasc batch`), then atomically persist the session's solved
/// form to `--out`.
fn snapshot_cmd(opts: &Opts) -> Result<(), String> {
    let spec_text = read(opts.required("spec")?)?;
    let out_path = opts.required("out")?.to_owned();
    let spec = PropertySpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let (sigma, dfa) = spec.compile();

    let mut engine = rasc::inc::BatchEngine::new(sigma, &dfa);
    let stdout = std::io::stdout();
    let out = stdout.lock();
    let result = match opts.value("input") {
        Some(path) => engine.run_stream(read(path)?.as_bytes(), out),
        None => {
            let stdin = std::io::stdin();
            engine.run_stream(stdin.lock(), out)
        }
    };
    result.map_err(|e| e.to_string())?;

    let bytes = engine
        .snapshot_to(std::path::Path::new(&out_path))
        .map_err(|e| e.to_string())?;
    eprintln!("rasc: wrote {bytes}-byte snapshot to {out_path}");
    Ok(())
}

/// `rasc restore`: reload a snapshot into a fresh session (no
/// re-solving) and run a command stream — typically queries — against it.
fn restore_cmd(opts: &Opts) -> Result<(), String> {
    let spec_text = read(opts.required("spec")?)?;
    let snap_path = opts.required("snapshot")?.to_owned();
    let spec = PropertySpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let (sigma, dfa) = spec.compile();

    let mut engine = rasc::inc::BatchEngine::new(sigma, &dfa);
    engine
        .restore_from(std::path::Path::new(&snap_path))
        .map_err(|e| e.to_string())?;
    eprintln!(
        "rasc: restored {} constraints from {snap_path}",
        engine.session().system().num_constraints()
    );

    let stdout = std::io::stdout();
    let out = stdout.lock();
    let result = match opts.value("input") {
        Some(path) => engine.run_stream(read(path)?.as_bytes(), out),
        None => {
            let stdin = std::io::stdin();
            engine.run_stream(stdin.lock(), out)
        }
    };
    result.map_err(|e| e.to_string())
}

/// Parses `--limits steps=N,millis=N,terms=N,entries=N` (any subset).
fn parse_limits(spec: &str) -> Result<rasc::inc::EngineCaps, String> {
    let mut caps = rasc::inc::EngineCaps::unlimited();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad --limits entry `{part}` (want key=value)"))?;
        let n: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad --limits value in `{part}`"))?;
        let as_usize = usize::try_from(n).unwrap_or(usize::MAX);
        match key.trim() {
            "steps" => caps.max_steps = Some(n),
            "millis" => caps.max_millis = Some(n),
            "terms" => caps.max_terms = Some(as_usize),
            "entries" => caps.max_entries = Some(as_usize),
            other => {
                return Err(format!(
                    "unknown --limits key `{other}` (want steps, millis, terms, or entries)"
                ))
            }
        }
    }
    Ok(caps)
}

fn spec_cmd(opts: &Opts) -> Result<(), String> {
    let spec_text = read(opts.required("spec")?)?;
    let spec = PropertySpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let (sigma, dfa) = spec.compile();
    println!(
        "states: {} ({} minimized), symbols: {}, parametric: {}",
        dfa.len(),
        dfa.minimize().len(),
        sigma.len(),
        spec.is_parametric()
    );
    if opts.flag("monoid") {
        let monoid = Monoid::of_dfa(&dfa.minimize());
        println!("|F_M^≡| = {}", monoid.len());
    }
    if opts.flag("dot") {
        print!("{}", dfa.to_dot(&sigma));
    }
    Ok(())
}

fn cfg_cmd(opts: &Opts) -> Result<(), String> {
    let program_text = read(opts.required("program")?)?;
    let program = rasc::cfgir::Program::parse(&program_text).map_err(|e| e.to_string())?;
    let cfg = Cfg::build(&program).map_err(|e| e.to_string())?;
    if opts.flag("dot") {
        print!("{}", cfg.to_dot());
    } else {
        println!(
            "functions: {}, program points: {}, edges: {}, call sites: {}",
            cfg.functions().len(),
            cfg.num_nodes(),
            cfg.edges().len(),
            cfg.call_sites().len()
        );
    }
    Ok(())
}
