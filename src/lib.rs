//! `rasc` — Regularly Annotated Set Constraints.
//!
//! Umbrella crate re-exporting the whole toolkit. See the individual crates
//! for details:
//!
//! * [`automata`] — DFA/NFA machinery, transition monoids, property specs.
//! * [`constraints`] — the annotated set-constraint solver (the paper's core).
//! * [`cfgir`] — the MiniImp language and interprocedural CFGs.
//! * [`pushdown`] — pushdown systems and `post*` saturation (MOPS baseline).
//! * [`pdmc`] — pushdown model checking via annotated constraints.
//! * [`ptr`] — field-sensitive points-to analysis with stack-aware alias queries.
//! * [`dataflow`] — interprocedural bit-vector dataflow via annotations.
//! * [`flow`] — type-based flow analysis with non-structural subtyping.
//! * [`inc`] — incremental solving sessions: epoch rollback, stamped
//!   query caching, and the JSON-lines batch protocol.
//! * [`obs`] — structured tracing and metrics: event sinks, scoped
//!   installation, Chrome-trace export, and solver provenance.
//! * [`serve`] — the concurrent JSON-lines TCP server: session pools,
//!   admission control, and graceful drain (`rasc serve`).

#![forbid(unsafe_code)]

pub use rasc_automata as automata;
pub use rasc_cfgir as cfgir;
pub use rasc_core as constraints;
pub use rasc_dataflow as dataflow;
pub use rasc_flow as flow;
pub use rasc_inc as inc;
pub use rasc_obs as obs;
pub use rasc_pdmc as pdmc;
pub use rasc_ptr as ptr;
pub use rasc_pushdown as pushdown;
pub use rasc_serve as serve;

pub use rasc_inc::Session;
