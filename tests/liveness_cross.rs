//! Randomized cross-validation of the backward-congruence liveness engine
//! (§5's backward solver) against the classical iterative oracle.

use rasc::cfgir::{Cfg, NodeId};
use rasc::dataflow::{IterativeLiveness, Liveness, LivenessSpecEntry};
use rasc_bench::workload::{generate, WorkloadConfig};

fn facts() -> Vec<LivenessSpecEntry> {
    (0..3)
        .map(|i| LivenessSpecEntry {
            fact: format!("x{i}"),
            uses: vec![format!("use_x{i}")],
            defs: vec![format!("def_x{i}")],
        })
        .collect()
}

#[test]
fn backward_solver_matches_iterative_oracle_on_random_programs() {
    let names: Vec<String> = (0..3)
        .flat_map(|i| [format!("use_x{i}"), format!("def_x{i}")])
        .collect();
    for seed in 0..30u64 {
        let wl = WorkloadConfig::sized(120, names.clone(), seed);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).unwrap();
        let spec = facts();
        let mut engine = Liveness::new(&cfg, &spec).unwrap();
        engine.solve();
        let oracle = IterativeLiveness::solve(&cfg, &spec);
        for entry in &spec {
            for node in 0..cfg.num_nodes() {
                let n = NodeId::from_index(node);
                assert_eq!(
                    engine.live_at(&entry.fact, n),
                    oracle.live_at(&entry.fact, n),
                    "seed {seed}, fact {}, node {node}\n{program}",
                    entry.fact
                );
            }
        }
    }
}
