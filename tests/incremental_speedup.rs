//! Acceptance bound for the incremental subsystem: on the largest bench
//! ladder, re-solving after a +1% constraint delta through a `Session`
//! (epoch push → add → re-drain → pop) must be at least 5× faster than
//! rebuilding and solving the whole system from scratch.
//!
//! The observed gap is two orders of magnitude (see
//! `BENCH_incremental.json`), so the 5× floor has a wide noise margin
//! even on loaded CI machines.

use std::time::Instant;

use rasc::automata::{adversarial_machine, Dfa, SymbolId};
use rasc::constraints::algebra::MonoidAlgebra;
use rasc::constraints::{SetExpr, System, VarId};
use rasc::Session;
use rasc_bench::constraints_workload::{ladder, EdgeListWorkload};
use rasc_devtools::Rng;

fn delta_edges(wl: &EdgeListWorkload, seed: u64) -> Vec<(usize, usize, Vec<SymbolId>)> {
    let mut rng = Rng::new(seed);
    let n = (wl.edges.len() / 100).max(1);
    let syms: Vec<SymbolId> = wl
        .edges
        .iter()
        .flat_map(|(_, _, w)| w.iter().copied())
        .collect();
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..wl.n_vars),
                rng.gen_range(0..wl.n_vars),
                vec![syms[rng.gen_range(0..syms.len())]],
            )
        })
        .collect()
}

fn build_base(machine: &Dfa, wl: &EdgeListWorkload) -> (Session<MonoidAlgebra>, Vec<VarId>) {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<VarId> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .unwrap();
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .unwrap();
    }
    (Session::from_system(sys), vars)
}

#[test]
fn incremental_resolve_beats_scratch_by_5x_on_the_largest_ladder() {
    let (sigma, machine) = adversarial_machine(3);
    let wl = ladder(4, 256, &sigma, 9);
    let delta = delta_edges(&wl, 1009);

    // Best-of-3 for each side, interleaved, to shrug off scheduler noise.
    let mut best_scratch = f64::INFINITY;
    let mut best_inc = f64::INFINITY;
    let (mut sess, vars) = build_base(&machine, &wl);
    let sink = vars[wl.sink];
    // Warm the incremental path once (first epoch interns delta words).
    for _ in 0..4 {
        let t0 = Instant::now();
        let mut full = wl.clone();
        full.edges.extend(delta.iter().cloned());
        let (mut scratch_sess, scratch_vars) = build_base(&machine, &full);
        let scratch_reached = scratch_sess.system_mut().nonempty(scratch_vars[full.sink]);
        best_scratch = best_scratch.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        sess.push_epoch();
        for (from, to, word) in &delta {
            let ann = sess.system_mut().algebra_mut().word(word);
            sess.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
                .unwrap();
        }
        let inc_reached = sess.system_mut().nonempty(sink);
        assert!(sess.pop_epoch());
        best_inc = best_inc.min(t1.elapsed().as_secs_f64());

        assert_eq!(inc_reached, scratch_reached, "the two paths must agree");
    }

    let speedup = best_scratch / best_inc;
    assert!(
        speedup >= 5.0,
        "incremental re-solve must be ≥5× faster than scratch \
         (scratch {best_scratch:.4}s, incremental {best_inc:.4}s, {speedup:.1}×)"
    );
}
