//! Integration tests reproducing every worked example in the paper's
//! application sections (§6 and §7) through the public API.

use rasc::automata::PropertySpec;
use rasc::cfgir::{Cfg, Program};
use rasc::constraints::algebra::Algebra;
use rasc::flow::{DualAnalysis, FlowAnalysis};
use rasc::pdmc::{properties, ConstraintChecker};
use rasc::pushdown::PdsChecker;

/// §6.3: the privilege property on the paper's exact example program.
#[test]
fn section_6_3_constraint_path() {
    let src = "fn main() {
        s1: event seteuid_zero;
        if (*) { s3: event seteuid_nonzero; } else { s4: skip; }
        s5: event execl;
        s6: skip;
    }";
    let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
    let spec = PropertySpec::parse(properties::SIMPLE_PRIVILEGE).unwrap();
    let mut checker = ConstraintChecker::from_spec(&cfg, &spec, "main").unwrap();
    checker.solve();

    // "The constraints imply pc^{f_error} is in S6."
    let s6 = cfg.label_node("s6").unwrap();
    let violations = checker.violations();
    assert!(violations.contains(&s6));

    // pc's annotations at S6 include the error class and (via the then
    // branch) a non-error class.
    let anns = checker.pc_annotations(s6);
    assert!(anns.len() >= 2, "both branches reach s6");
    let n_accepting = {
        let alg = checker.system().algebra();
        anns.iter().filter(|&&a| alg.is_accepting(a)).count()
    };
    assert_eq!(n_accepting, 1, "exactly the else-branch class errs");

    // Before the execl there is no violation.
    assert!(!violations.contains(&cfg.label_node("s5").unwrap()));

    // The direct pushdown engine agrees on the violating point.
    let (sigma, dfa) = spec.compile();
    let pds = PdsChecker::new(&cfg, &sigma, &dfa, "main").unwrap();
    let heads = pds.run();
    assert!(heads.iter().any(|v| v.node == s6));
}

/// §6.4 / Figures 5–7: parametric file-descriptor tracking.
#[test]
fn section_6_4_parametric_file_state() {
    let src = "fn main() {
        s1: event open(fd1);
        s2: event open(fd2);
        s3: event close(fd1);
        s4: skip;
    }";
    let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
    let spec = PropertySpec::parse(properties::FILE_STATE).unwrap();
    let mut checker = ConstraintChecker::parametric(&cfg, &spec, "main").unwrap();
    checker.solve();

    // After s1: fd1 open. After s2: both open. After s3: only fd2.
    let expect = [
        ("s1", vec!["fd1"]),
        ("s2", vec!["fd1", "fd2"]),
        ("s3", vec!["fd2"]),
    ];
    for (label, open) in expect {
        let node = cfg.label_after(label).unwrap();
        let anns = checker.pc_annotations(node);
        assert_eq!(anns.len(), 1, "one path class at {label}");
        let alg = checker.system().algebra();
        let mut names: Vec<String> = alg
            .accepting_instances(anns[0])
            .iter()
            .flat_map(|(key, _)| key.values().map(|l| alg.label_name(*l).to_owned()))
            .collect();
        names.sort();
        assert_eq!(names, open, "open set after {label}");
    }
}

/// §6.4 in a branching/interprocedural setting: instantiations from
/// different paths merge per-parameter.
#[test]
fn parametric_across_calls_and_branches() {
    let src = "fn opener() { event open(fd_log); }
        fn main() {
            opener();
            if (*) { event close(fd_log); } else { skip; }
            done: skip;
        }";
    let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
    let spec = PropertySpec::parse(properties::FILE_STATE).unwrap();
    let mut checker = ConstraintChecker::parametric(&cfg, &spec, "main").unwrap();
    checker.solve();
    let done = cfg.label_node("done").unwrap();
    let anns = checker.pc_annotations(done);
    // Two path classes: one where fd_log is closed, one where it leaks.
    let alg = checker.system().algebra();
    let leak_classes = anns.iter().filter(|&&a| alg.is_accepting(a)).count();
    assert_eq!(leak_classes, 1, "the else path leaks fd_log");
    assert_eq!(anns.len(), 2);
}

/// §7.4 / Figures 11–12, and the §7.6 dual: `B` flows to `V`; the two
/// formulations agree on all labeled flows.
#[test]
fn section_7_4_and_7_6_agree() {
    let src = "fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }\n\
               fn main() -> int { pair[i](2@B)@T.2@V }";
    let program = rasc::flow::Program::parse(src).unwrap();
    let mut primary = FlowAnalysis::new(&program).unwrap();
    primary.solve();
    let mut dual = DualAnalysis::new(&program).unwrap();
    dual.solve();

    for src_label in ["A", "B"] {
        for dst in ["T", "V"] {
            assert_eq!(
                primary.flows(src_label, dst),
                dual.flows(src_label, dst),
                "{src_label} → {dst}"
            );
        }
    }
    assert!(primary.flows("B", "V"));
    assert!(!primary.flows("A", "V"));
    // A flows to T only inside the pair (PN view), not at top level.
    assert!(!primary.flows("A", "T"));
    assert!(primary.flows_pn("A", "T"));
}

/// §7.5: stack-aware alias queries on the paper's two-call pattern.
#[test]
fn section_7_5_stack_aware_alias() {
    // The MiniLam rendition of the paper's foo(&a,&b)/foo(&b,&a) example:
    // a two-parameter function is modeled as two single-parameter
    // functions sharing call sites; the discriminating fact is that each
    // result set holds {o_s1(a), o_s2(b)} vs {o_s1(b), o_s2(a)}.
    let src = "fn fst(p: int) -> int { p@X }\n\
               fn snd(q: int) -> int { q@Y }\n\
               fn main() -> int {\n\
                   ((fst[c1](1@LA)@XA, snd[c1b](2@LB)@YB),\n\
                    (fst[c2](2@LB2)@XB, snd[c2b](1@LA2)@YA)).1.1\n\
               }";
    let program = rasc::flow::Program::parse(src).unwrap();
    let mut a = FlowAnalysis::new(&program).unwrap();
    a.solve();
    // XA holds lit1-via-c1; YA holds lit1-via-c2b: different literals?
    // lit constants are per-occurrence, so 1@LA and 1@LA2 are distinct
    // abstract values: XA ∩ YA = ∅.
    assert!(!a.may_alias("XA", "YA").unwrap());
    // But each aliases itself.
    assert!(a.may_alias("XA", "XA").unwrap());
}

/// The full privilege property drives the same checker (the Table 1
/// configuration) on a hand-written violating program.
#[test]
fn full_privilege_property_end_to_end() {
    let (sigma, dfa) = properties::full_privilege_property();
    let src = "fn drop_uid() { event setresuid_user; }
        fn main() {
            drop_uid();
            s: event execl;
            t: skip;
        }";
    let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
    let mut checker = ConstraintChecker::new(&cfg, &sigma, &dfa, "main").unwrap();
    checker.solve();
    // uid dropped but gid still effective-root: still a violation.
    assert!(checker.violated());

    let fixed = "fn drop_all() { event setresuid_user; event setgid_user; }
        fn main() { drop_all(); event execl; }";
    let cfg = Cfg::build(&Program::parse(fixed).unwrap()).unwrap();
    let mut checker = ConstraintChecker::new(&cfg, &sigma, &dfa, "main").unwrap();
    checker.solve();
    assert!(!checker.violated());
}
