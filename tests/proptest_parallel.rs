//! Property tests for the deterministic parallel fixpoint engine
//! ([`System::solve_parallel`], sharded speculation + sequential merge):
//!
//! * **Parallel equals sequential, bit for bit** — for random constraint
//!   sets, solving with 1/2/4/8 threads (and fuzzed round sizes, which
//!   reshuffle the shard interleaving) must answer every observable query
//!   exactly like the sequential solver, and must serialize to a
//!   byte-identical snapshot — counters, provenance records, and
//!   solved-form layout included. Checked under both solver
//!   configurations (with and without cycle elimination / projection
//!   merging), since ε edges take a different speculation path.
//! * **Budgets interrupt and resume identically** — a step-bounded
//!   parallel solve reports [`Outcome::Interrupted`] with work pending,
//!   and driving it to completion in bounded slices converges to the
//!   sequential fixpoint.
//! * **Epoch rollback over a parallel solve nets out** — `pop_epoch` on a
//!   parallel-solved system restores the pre-epoch observables, and the
//!   paired obs counters a recorder collects cancel exactly.
//!
//! Generators mirror the fork suite: random constraints over a small
//! fixed shape, compared through sorted semantic signatures.

use std::sync::Arc;

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{Budget, ConsId, Outcome, SetExpr, SolverConfig, System, VarId, Variance};
use rasc::obs::{scoped, Recorder};
use rasc::Session;
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng};

const N_VARS: usize = 6;

#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn arb_cons(rng: &mut Rng, lo: usize, hi: usize) -> Vec<RandCon> {
    (0..rng.gen_range(lo..hi)).map(|_| arb_con(rng)).collect()
}

fn machine() -> (Alphabet, Dfa) {
    // Odd number of `a`, ending in `b` — 4-state minimal machine.
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

/// Both solver configurations worth distinguishing: the optimized default
/// (where ε edges are never speculated) and the plain resolution engine
/// (where they are).
fn configs() -> [SolverConfig; 2] {
    [
        SolverConfig::default(),
        SolverConfig {
            cycle_elimination: false,
            projection_merging: false,
            ..SolverConfig::default()
        },
    ]
}

struct Shape {
    vars: Vec<VarId>,
    probe: ConsId,
    o: ConsId,
}

fn declare(sys: &mut System<MonoidAlgebra>) -> Shape {
    let vars = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    Shape { vars, probe, o }
}

/// Adds one random constraint directly to a system (no solve).
fn apply(sys: &mut System<MonoidAlgebra>, shape: &Shape, syms: &[SymbolId], c: &RandCon) {
    let ann = |sys: &mut System<MonoidAlgebra>, s: &Option<u8>| match s {
        Some(i) => sys.algebra_mut().word(&[syms[*i as usize]]),
        None => sys.algebra().identity(),
    };
    match *c {
        RandCon::Edge(a, b, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(SetExpr::var(shape.vars[a]), SetExpr::var(shape.vars[b]), w)
                .unwrap();
        }
        RandCon::Const(v, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(
                SetExpr::cons(shape.probe, []),
                SetExpr::var(shape.vars[v]),
                w,
            )
            .unwrap();
        }
        RandCon::Wrap(a, b) => {
            sys.add(
                SetExpr::cons_vars(shape.o, [shape.vars[a]]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Proj(a, b) => {
            sys.add(
                SetExpr::proj(shape.o, 0, shape.vars[a]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Sink(a, b) => {
            sys.add(
                SetExpr::var(shape.vars[a]),
                SetExpr::cons_vars(shape.o, [shape.vars[b]]),
            )
            .unwrap();
        }
    }
}

/// Per-variable semantic observation: sorted probe occurrence annotations
/// (rendered), emptiness, `o`-acceptance, partially matched occurrences —
/// plus global consistency.
type Signature = (Vec<(Vec<String>, bool, bool, Vec<String>)>, bool);

fn session_signature(s: &mut Session<MonoidAlgebra>, shape: &Shape) -> Signature {
    let per_var = shape
        .vars
        .iter()
        .map(|&v| {
            let mut occ: Vec<String> = s
                .occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            occ.sort();
            let nonempty = s.nonempty(v);
            let o_reaches = s.occurs_accepting(v, shape.o);
            let mut pn: Vec<String> = s
                .pn_occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            pn.sort();
            (occ, nonempty, o_reaches, pn)
        })
        .collect();
    (per_var, s.is_consistent())
}

/// Builds an unsolved session (with provenance recording, as the batch
/// engine always has it) holding a constraint list.
fn stage(
    dfa: &Dfa,
    config: SolverConfig,
    syms: &[SymbolId],
    cons: &[RandCon],
) -> (Session<MonoidAlgebra>, Shape) {
    let mut sess = Session::with_config(MonoidAlgebra::new(dfa), config);
    sess.system_mut().enable_provenance();
    let shape = declare(sess.system_mut());
    for c in cons {
        apply(sess.system_mut(), &shape, syms, c);
    }
    (sess, shape)
}

#[test]
fn parallel_solve_equals_sequential_on_the_full_query_surface() {
    forall(
        "parallel_solve_equals_sequential_on_the_full_query_surface",
        Config::cases(48),
        |rng| (arb_cons(rng, 1, 24), rng.gen_range(1..4)),
        |&(ref cons, min_batch)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            for config in configs() {
                // Sequential reference: fixpoint signature and bytes.
                let (mut seq, shape) = stage(&dfa, config, &syms, cons);
                seq.system_mut().solve();
                let want = session_signature(&mut seq, &shape);
                let bytes = seq.snapshot_bytes().expect("solved session snapshots");

                // A tiny `min_batch` forces real worker rounds even on
                // these small systems; varying it (and the thread count)
                // reshuffles which shard speculates which fact.
                for threads in [1usize, 2, 4, 8] {
                    let (mut par, shape) = stage(&dfa, config, &syms, cons);
                    let out = par.system_mut().solve_parallel_tuned(
                        &Budget::unlimited(),
                        threads,
                        min_batch,
                    );
                    prop_assert!(out.is_complete(), "unlimited parallel solve must complete");
                    let got = session_signature(&mut par, &shape);
                    prop_assert_eq!(
                        &got,
                        &want,
                        "parallel solve at {threads} threads diverged from sequential"
                    );
                    let again = par.snapshot_bytes().expect("solved session snapshots");
                    prop_assert_eq!(
                        &again,
                        &bytes,
                        "parallel solve at {threads} threads is not byte-identical"
                    );
                }

                // The session-level entry point agrees too.
                let (mut bulk, shape) = stage(&dfa, config, &syms, cons);
                prop_assert!(bulk.bulk_solve(4).is_complete());
                prop_assert_eq!(
                    &session_signature(&mut bulk, &shape),
                    &want,
                    "Session::bulk_solve diverged from sequential"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn bounded_parallel_solve_interrupts_and_resumes_to_the_sequential_fixpoint() {
    forall(
        "bounded_parallel_solve_interrupts_and_resumes_to_the_sequential_fixpoint",
        Config::cases(48),
        |rng| (arb_cons(rng, 2, 20), rng.gen_range(1..6)),
        |&(ref cons, steps)| {
            let steps = steps.max(1); // a 0-step budget can never progress
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            for config in configs() {
                let (mut seq, shape) = stage(&dfa, config, &syms, cons);
                seq.system_mut().solve();
                let want = session_signature(&mut seq, &shape);

                // Drive the parallel solver in bounded slices; every
                // interruption must leave resumable pending work.
                let (mut par, shape) = stage(&dfa, config, &syms, cons);
                let budget = Budget::unlimited().with_steps(steps as u64);
                let mut slices = 0usize;
                loop {
                    match par.system_mut().solve_parallel_tuned(&budget, 4, 1) {
                        Outcome::Complete => break,
                        Outcome::Interrupted(_) => {
                            prop_assert!(
                                par.pending_facts() > 0,
                                "an interrupted parallel solve must report pending work"
                            );
                        }
                    }
                    slices += 1;
                    prop_assert!(slices < 100_000, "bounded solve failed to make progress");
                }
                prop_assert_eq!(
                    &session_signature(&mut par, &shape),
                    &want,
                    "resumed bounded parallel solve diverged from sequential"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn parallel_epoch_rollback_counters_cancel() {
    forall(
        "parallel_epoch_rollback_counters_cancel",
        Config::cases(48),
        |rng| (arb_cons(rng, 1, 16), arb_cons(rng, 1, 8)),
        |(cons, extra)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();

            // The base fixpoint is reached outside the recorder's scope:
            // its additions are permanent and never roll back, so only
            // the epoch's delta — which the recorder sees in full,
            // including the merge phase of parallel rounds — must cancel.
            let (mut sess, shape) = stage(&dfa, SolverConfig::default(), &syms, cons);
            assert!(sess
                .system_mut()
                .solve_parallel_tuned(&Budget::unlimited(), 4, 1)
                .is_complete());
            let want = session_signature(&mut sess, &shape);

            let rec = Arc::new(Recorder::new());
            scoped(Arc::clone(&rec) as _, || {
                sess.push_epoch();
                for c in extra {
                    apply(sess.system_mut(), &shape, &syms, c);
                }
                prop_assert!(sess
                    .system_mut()
                    .solve_parallel_tuned(&Budget::unlimited(), 4, 1)
                    .is_complete());
                prop_assert!(sess.pop_epoch(), "the pushed epoch must pop");

                let got = session_signature(&mut sess, &shape);
                prop_assert_eq!(
                    &got,
                    &want,
                    "epoch rollback over a parallel solve did not restore the fixpoint"
                );

                for (added, removed) in [
                    ("solver.edges.added", "solver.edges.removed"),
                    ("solver.lbs.added", "solver.lbs.removed"),
                    ("solver.ubs.added", "solver.ubs.removed"),
                    ("solver.facts", "solver.facts.rolled_back"),
                    ("solver.fuel", "solver.fuel.rolled_back"),
                ] {
                    prop_assert_eq!(
                        i128::from(rec.counter_value(added)),
                        i128::from(rec.counter_value(removed)),
                        "`{added}` and `{removed}` must cancel after the epoch rollback"
                    );
                }
                Ok(())
            })
        },
    );
}
