//! Property tests for the metrics aggregation plane
//! ([`rasc::obs::MetricsRegistry`]).
//!
//! 1. **Quantile accuracy.** The registry stores latencies in fixed
//!    log₂ buckets, so `quantile(q)` is an estimate: the inclusive
//!    upper bound of the bucket holding the rank-⌈q·n⌉ sample, clamped
//!    to the observed maximum. That estimate must never undershoot the
//!    exact order statistic and must land in the *same* log₂ bucket —
//!    i.e. p50/p90/p99 are within one bucket (a factor of two) of the
//!    exact quantiles, on any workload.
//!
//! 2. **Rollback reconciliation.** Installed as the scoped sink over a
//!    solver's whole lifetime, the registry's *net* counters must
//!    equal the solver's own [`SolverStats`] at every flush boundary —
//!    including after `push_epoch`/`pop_epoch` rollback, where the
//!    `…rolled_back`/`…removed` counters grow while the stats shrink.
//!    This is the recorder reconcile suite's invariant, re-proved for
//!    the aggregating sink the serve layer keeps permanently installed.

use std::sync::Arc;

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::MonoidAlgebra;
use rasc::constraints::{Budget, SetExpr, SolverStats, System, Variance};
use rasc::obs::{bucket_index, scoped, EventSink, MetricsRegistry, MetricsSnapshot};
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng};

/// Draws a value whose magnitude spans the full bucket range: mostly
/// small latencies, but with heavy-tail draws up to 2^60 and explicit
/// zeros, so every quantile case exercises bucket boundaries.
fn arb_value(rng: &mut Rng) -> u64 {
    match rng.gen_range(0..10) {
        0 => 0,
        1..=5 => rng.gen_range(0..1000) as u64,
        6 | 7 => rng.gen_range(0..1_000_000) as u64,
        8 => rng.gen_range(0..1 << 30) as u64,
        _ => {
            let shift = rng.gen_range(0..61);
            (rng.next_u64() >> 3) >> (60 - shift)
        }
    }
}

/// The exact q-quantile under the same rank convention the histogram
/// estimator uses: the rank-⌈q·n⌉ smallest sample (1-based), clamped
/// into range.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[usize::try_from(rank - 1).unwrap()]
}

#[test]
fn histogram_quantiles_are_within_one_bucket_of_exact() {
    forall(
        "histogram_quantiles_are_within_one_bucket_of_exact",
        Config::cases(128),
        |rng| (0..rng.gen_range(1..200)).map(|_| arb_value(rng)).collect(),
        |values: &Vec<u64>| {
            let reg = MetricsRegistry::new();
            for &v in values {
                reg.histogram("request.micros", v);
            }
            let snap = reg.snapshot();
            let h = snap
                .histograms
                .get("request.micros")
                .ok_or("histogram must exist after recording")?;

            let mut sorted = values.clone();
            sorted.sort_unstable();
            prop_assert_eq!(h.count(), sorted.len() as u64, "count must be exact");
            prop_assert_eq!(
                h.sum,
                sorted.iter().sum::<u64>(),
                "sum must be exact (not bucketed)"
            );
            prop_assert_eq!(h.min, sorted[0], "min must be exact");
            prop_assert_eq!(h.max, sorted[sorted.len() - 1], "max must be exact");

            for q in [0.5, 0.9, 0.99] {
                let exact = exact_quantile(&sorted, q);
                let est = h.quantile(q);
                prop_assert!(
                    est >= exact,
                    "p{} estimate {est} must not undershoot exact {exact}",
                    (q * 100.0) as u32
                );
                prop_assert_eq!(
                    bucket_index(est),
                    bucket_index(exact),
                    "p{} estimate {est} must land in the same log₂ bucket as \
                     exact {exact}",
                    (q * 100.0) as u32
                );
            }
            Ok(())
        },
    );
}

/// A random surface constraint over a small fixed shape.
#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize),
}

const N_VARS: usize = 5;

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..8) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = rng.gen_bool(0.5).then(|| rng.gen_range(0..2) as u8);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = rng.gen_bool(0.5).then(|| rng.gen_range(0..2) as u8);
            RandCon::Const(a, s)
        }
        _ => RandCon::Wrap(v(rng), v(rng)),
    }
}

fn machine() -> (Alphabet, Dfa) {
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

/// Net registry counters must equal the solver statistics. Valid only at
/// flush boundaries (after an unbounded solve or a finished pop).
fn reconcile(snap: &MetricsSnapshot, stats: &SolverStats) -> Result<(), String> {
    let counter = |name: &str| -> i128 { snap.counters.get(name).copied().unwrap_or(0).into() };
    let checks: [(&str, &str, usize); 5] = [
        ("solver.edges.added", "solver.edges.removed", stats.edges),
        ("solver.lbs.added", "solver.lbs.removed", stats.lower_bounds),
        ("solver.ubs.added", "solver.ubs.removed", stats.upper_bounds),
        (
            "solver.facts",
            "solver.facts.rolled_back",
            stats.facts_processed,
        ),
        ("solver.fuel", "solver.fuel.rolled_back", stats.fuel_spent),
    ];
    for (added, removed, want) in checks {
        prop_assert_eq!(
            counter(added) - counter(removed),
            want as i128,
            "`{added}` − `{removed}` must equal the solver statistic"
        );
    }
    Ok(())
}

#[test]
fn registry_counters_reconcile_with_solver_stats_across_rollback() {
    let (sigma, dfa) = machine();
    let syms: Vec<SymbolId> = sigma.symbols().collect();
    forall(
        "registry_counters_reconcile_with_solver_stats_across_rollback",
        Config::cases(48),
        |rng| (0..rng.gen_range(1..16)).map(|_| arb_con(rng)).collect(),
        |cons: &Vec<RandCon>| {
            let reg = Arc::new(MetricsRegistry::new());
            scoped(Arc::clone(&reg) as _, || {
                let mut sys = System::new(MonoidAlgebra::new(&dfa));
                let vars: Vec<_> = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
                let probe = sys.constructor("probe", &[]);
                let o = sys.constructor("o", &[Variance::Covariant]);
                let apply = |sys: &mut System<MonoidAlgebra>, c: &RandCon| {
                    let ann = |sys: &mut System<MonoidAlgebra>, s: &Option<u8>| match s {
                        Some(i) => {
                            let sym = syms[*i as usize];
                            sys.algebra_mut().word(&[sym])
                        }
                        None => {
                            use rasc::constraints::algebra::Algebra;
                            sys.algebra().identity()
                        }
                    };
                    match *c {
                        RandCon::Edge(a, b, ref s) => {
                            let w = ann(sys, s);
                            sys.add_ann(SetExpr::var(vars[a]), SetExpr::var(vars[b]), w)
                                .unwrap();
                        }
                        RandCon::Const(v, ref s) => {
                            let w = ann(sys, s);
                            sys.add_ann(SetExpr::cons(probe, []), SetExpr::var(vars[v]), w)
                                .unwrap();
                        }
                        RandCon::Wrap(a, b) => {
                            sys.add(SetExpr::cons_vars(o, [vars[a]]), SetExpr::var(vars[b]))
                                .unwrap();
                        }
                    }
                };

                let (first, second) = cons.split_at(cons.len() / 2);
                for c in first {
                    apply(&mut sys, c);
                }
                sys.solve();
                reconcile(&reg.snapshot(), &sys.stats())?;

                // Speculative epoch: more constraints, a starved bounded
                // solve (spends fuel, usually interrupts), a finishing
                // solve — then roll everything back. The registry's net
                // counters must track the stats through every phase.
                sys.push_epoch();
                for c in second {
                    apply(&mut sys, c);
                }
                let _ = sys.solve_bounded(&Budget::unlimited().with_steps(2));
                sys.solve();
                reconcile(&reg.snapshot(), &sys.stats())?;

                prop_assert!(sys.pop_epoch(), "epoch must pop");
                let snap = reg.snapshot();
                reconcile(&snap, &sys.stats())?;

                // The registry also tallies solve spans; at least the two
                // unbounded solves above must have completed.
                prop_assert!(
                    snap.spans.get("solver.solve").copied().unwrap_or(0) >= 2,
                    "solver.solve spans must be tallied"
                );
                Ok(())
            })
        },
    );
}
