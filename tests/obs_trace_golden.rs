//! Golden test for the Chrome trace-event sink: a fixed workload (the
//! paper's worked Example 2.4) recorded through a [`ChromeTraceSink`]
//! driven by the deterministic [`TickClock`] must produce a trace that
//!
//! * validates against the trace-event schema (`name`/`ph`/`ts`/`pid`/
//!   `tid` on every event, counters carrying `args.value`),
//! * nests its `B`/`E` duration events properly (here at depth ≥ 2: an
//!   outer hand-opened span around the solver's own `solver.solve`),
//! * and is byte-deterministic across runs, starting with a known
//!   event (`ts` ticks once per clock read, starting at 0).

use std::sync::Arc;

use rasc::automata::{Alphabet, Dfa};
use rasc::constraints::algebra::MonoidAlgebra;
use rasc::constraints::{SetExpr, System, Variance};
use rasc::obs::{scoped, span, ChromeTraceSink, TickClock};
use rasc_devtools::validate_chrome_trace;

/// Runs Example 2.4 (`c ⊆^g W, o(W) ⊆^g X, X ⊆ o(Y), o(Y) ⊆ Z`) with an
/// epoch push/pop, inside a hand-opened outer span.
fn run_workload() {
    let mut sigma = Alphabet::new();
    let g = sigma.intern("g");
    let k = sigma.intern("k");
    let dfa = Dfa::one_bit(&sigma, g, k);

    let _outer = span("workload");
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let (w, x, y, z) = (sys.var("W"), sys.var("X"), sys.var("Y"), sys.var("Z"));
    let c = sys.constructor("c", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    let fg = sys.algebra_mut().word(&[g]);
    sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
        .unwrap();
    sys.add_ann(SetExpr::cons_vars(o, [w]), SetExpr::var(x), fg)
        .unwrap();
    sys.add(SetExpr::var(x), SetExpr::cons_vars(o, [y]))
        .unwrap();
    sys.add(SetExpr::cons_vars(o, [y]), SetExpr::var(z))
        .unwrap();
    sys.solve();
    assert!(sys.is_consistent());
    sys.push_epoch();
    sys.add(SetExpr::var(z), SetExpr::var(w)).unwrap();
    sys.solve();
    assert!(sys.pop_epoch());
}

fn record_trace() -> String {
    let sink = Arc::new(ChromeTraceSink::with_time_source(
        Arc::new(TickClock::new()),
    ));
    scoped(Arc::clone(&sink) as _, run_workload);
    sink.render()
}

#[test]
fn chrome_trace_validates_against_the_event_schema() {
    let trace = record_trace();
    let summary = validate_chrome_trace(&trace).expect("schema-valid trace");

    // The workload emits real activity: spans balance, counters flow.
    assert!(summary.events > 10, "got only {} events", summary.events);
    assert_eq!(summary.begins, summary.ends, "B/E events must balance");
    assert!(summary.counters > 0, "no counter events recorded");

    // The solver's `solver.solve` span sits inside the hand-opened
    // `workload` span: proper nesting at depth ≥ 2.
    assert!(
        summary.max_depth >= 2,
        "expected nested spans, max depth {}",
        summary.max_depth
    );
}

#[test]
fn chrome_trace_is_deterministic_and_well_formed() {
    let trace = record_trace();

    // TickClock starts at zero and advances one microsecond per read, so
    // the opening event is fully determined.
    assert!(
        trace.starts_with(
            r#"{"traceEvents":[{"name":"workload","ph":"B","ts":0,"pid":1,"tid":1,"args":{}}"#
        ),
        "unexpected trace head: {}",
        &trace[..trace.len().min(120)]
    );
    assert!(trace.ends_with("],\"displayTimeUnit\":\"ms\"}"));

    // Byte-identical on a second run: nothing in the pipeline depends on
    // wall-clock time or iteration order of unordered containers.
    assert_eq!(trace, record_trace(), "trace must be reproducible");
}

#[test]
fn tampered_traces_are_rejected() {
    // Guard the guard: the schema checker must notice a corrupted phase
    // on an otherwise well-formed JSON document, not just parse errors.
    let trace = record_trace();
    let tampered = match trace.find(r#","ph":"E""#) {
        Some(i) => format!(
            "{}{}",
            &trace[..i],
            &trace[i..].replacen("\"E\"", "\"Q\"", 1)
        ),
        None => panic!("trace has no end events"),
    };
    assert!(validate_chrome_trace(&tampered).is_err());
}
