//! Integration tests for `rasc-serve`: concurrent loopback clients,
//! hostile input over TCP, admission control, graceful shutdown with a
//! request deterministically in flight, crash-safe warm restart from a
//! snapshot directory, and the admin telemetry plane (`/metrics`,
//! `/stats`, `/healthz`, the slow-query log, request-id correlation,
//! and the `rasc stats` poller).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rasc::automata::{Alphabet, Dfa};
use rasc::constraints::Clock;
use rasc::inc::json::Json;
use rasc::inc::EngineCaps;
use rasc::serve::{ServeConfig, Server, ServerHandle};
use rasc_devtools::SteppedClock;

/// A connected client speaking one JSON line per request.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
            line: String::new(),
        }
    }

    fn send(&mut self, request: &str) {
        self.writer.write_all(request.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
    }

    /// Reads one response line; `None` on clean EOF.
    fn recv(&mut self) -> Option<String> {
        self.line.clear();
        match self.reader.read_line(&mut self.line) {
            Ok(0) => None,
            Ok(_) => Some(self.line.trim_end().to_owned()),
            Err(e) => panic!("read failed: {e}"),
        }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        self.send(request);
        self.recv().expect("server closed unexpectedly")
    }
}

fn spawn_server(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let mut sigma = Alphabet::new();
    let (g, k) = (sigma.intern("g"), sigma.intern("k"));
    let machine = Dfa::one_bit(&sigma, g, k);
    let server = Server::bind("127.0.0.1:0", sigma, &machine, config).expect("bind");
    let (handle, join) = server.spawn();
    let join = std::thread::spawn(move || {
        join.join().expect("server thread").expect("server io");
    });
    (handle, join)
}

#[test]
fn concurrent_clients_get_isolated_sessions() {
    let (handle, join) = spawn_server(ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Every client declares the same constructor name and builds a
    // different system under it — no cross-talk is observable.
    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let r = c.roundtrip(r#"{"cmd":"declare","cons":"pc"}"#);
                assert!(r.contains(r#""ok":"declare""#), "client {i}: {r}");
                // `g` drives the one-bit machine to its accepting state,
                // so the occurrence is annotation-live.
                let r = c.roundtrip(&format!(
                    r#"{{"cmd":"add","lhs":"pc","rhs":"Var{i}","ann":["g"]}}"#
                ));
                assert!(r.contains(r#""ok":"add""#), "client {i}: {r}");
                // Our own variable occurs; the neighbours' never do.
                let r = c.roundtrip(&format!(
                    r#"{{"cmd":"query","kind":"occurs","var":"Var{i}","cons":"pc"}}"#
                ));
                assert!(r.contains(r#""result":true"#), "client {i}: {r}");
                let other = (i + 1) % 4;
                let r = c.roundtrip(&format!(
                    r#"{{"cmd":"query","kind":"occurs","var":"Var{other}","cons":"pc"}}"#
                ));
                assert!(
                    r.contains(r#""code":"unknown_variable""#),
                    "sessions must be isolated — client {i} saw {other}'s state: {r}"
                );
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client");
    }

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn hostile_tcp_input_never_kills_the_connection() {
    let (handle, join) = spawn_server(ServeConfig::default());
    let addr = handle.addr();

    let mut rng = rasc_devtools::Rng::new(0xfeed_beef);
    let mut c = Client::connect(addr);
    let mut expected = 0usize;
    let mut got = 0usize;
    for _ in 0..400 {
        let line = rasc_devtools::hostile::hostile_line(&mut rng);
        c.send(&line);
        if !rasc_devtools::hostile::is_silent(&line) {
            expected += 1;
            let response = c.recv().expect("connection must survive hostile input");
            let parsed = Json::parse(&response).expect("responses are valid JSON");
            assert!(
                parsed.get("ok").is_some() || parsed.get("error").is_some(),
                "every response is a typed ok/error: {response}"
            );
            got += 1;
        }
    }
    assert_eq!(got, expected);

    // The same connection still serves well-formed requests afterwards.
    let r = c.roundtrip(r#"{"cmd":"stats"}"#);
    assert!(r.contains(r#""ok":"stats""#), "{r}");

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn overload_is_a_typed_in_band_error() {
    let (handle, join) = spawn_server(ServeConfig {
        threads: 1,
        max_connections: 1,
        poll_millis: 5,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Client A occupies the only slot (a completed round-trip proves it
    // was admitted, not merely connected).
    let mut a = Client::connect(addr);
    let r = a.roundtrip(r#"{"cmd":"declare","cons":"pc"}"#);
    assert!(r.contains(r#""ok":"declare""#), "{r}");

    // Client B is refused with a typed error, then EOF.
    let mut b = Client::connect(addr);
    let refusal = b.recv().expect("overload answers in-band before closing");
    let parsed = Json::parse(&refusal).expect("refusal is valid JSON");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("overloaded"),
        "{refusal}"
    );
    assert_eq!(b.recv(), None, "refused connections close after the error");

    // Client A is unaffected.
    let r = a.roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Main"}"#);
    assert!(r.contains(r#""ok":"add""#), "{r}");

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn per_request_caps_clamp_client_limits() {
    let (handle, join) = spawn_server(ServeConfig {
        caps: EngineCaps {
            max_steps: Some(1),
            ..EngineCaps::unlimited()
        },
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut c = Client::connect(addr);
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains("ok"));
    // The client asks for a huge budget; the server-wide cap wins. A
    // growing chain makes each add dearer until the one-step cap bites,
    // and the failing add rolls back transactionally.
    assert!(c
        .roundtrip(r#"{"cmd":"limits","max_steps":1000000}"#)
        .contains(r#""ok":"limits""#));
    let mut requests = vec![r#"{"cmd":"add","lhs":"pc","rhs":"V0","ann":["g"]}"#.to_owned()];
    for i in 0..10 {
        requests.push(format!(
            r#"{{"cmd":"add","lhs":"V{i}","rhs":"V{}","ann":["g"]}}"#,
            i + 1
        ));
    }
    let mut clamped = false;
    for req in &requests {
        let r = c.roundtrip(req);
        if r.contains(r#""code":"budget_exhausted""#) {
            assert!(r.contains(r#""rolled_back":true"#), "{r}");
            clamped = true;
            break;
        }
        assert!(r.contains(r#""ok":"add""#), "{r}");
    }
    assert!(
        clamped,
        "a one-step server cap must clamp the client's million-step budget"
    );
    // The connection survives the refusal.
    assert!(c
        .roundtrip(r#"{"cmd":"stats"}"#)
        .contains(r#""ok":"stats""#));

    handle.shutdown();
    join.join().expect("server joins");
}

/// A [`Clock`] that signals when first consulted, then blocks until
/// released — making "a request is in flight on a worker" a
/// deterministic state instead of a sleep-based race.
#[derive(Debug)]
struct GateClock {
    entered: mpsc::Sender<()>,
    gate: Arc<(Mutex<bool>, Condvar)>,
    signalled: AtomicBool,
    inner: SteppedClock,
}

impl Clock for GateClock {
    fn now_millis(&self) -> u64 {
        if !self.signalled.swap(true, Ordering::SeqCst) {
            let _ = self.entered.send(());
            let (open, cv) = &*self.gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }
        self.inner.now_millis()
    }
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let (entered_tx, entered_rx) = mpsc::channel();
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let clock = Arc::new(GateClock {
        entered: entered_tx,
        gate: Arc::clone(&gate),
        signalled: AtomicBool::new(false),
        inner: SteppedClock::default(),
    });
    // A (huge) deadline cap makes every add consult the clock when its
    // budget starts — which is where the gate holds the request open.
    let (handle, join) = spawn_server(ServeConfig {
        threads: 2,
        poll_millis: 5,
        caps: EngineCaps {
            max_millis: Some(u64::MAX / 4),
            ..EngineCaps::unlimited()
        },
        clock: Some(clock),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Client A's add blocks on the gate inside its budget — in flight.
    let mut a = Client::connect(addr);
    a.send(r#"{"cmd":"declare","cons":"pc"}"#);
    a.send(r#"{"cmd":"add","lhs":"pc","rhs":"Main"}"#);
    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("the add must reach its budget's clock");

    // Client B issues the in-band shutdown command.
    let mut b = Client::connect(addr);
    let r = b.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert!(
        r.contains(r#""ok":"shutdown""#) && r.contains(r#""draining":true"#),
        "{r}"
    );
    assert_eq!(b.recv(), None, "the admin connection closes after the ack");
    assert!(handle.is_draining());

    // Release the gate: the in-flight request completes and its full
    // response is delivered before the connection closes.
    {
        let (open, cv) = &*gate;
        *open.lock().unwrap() = true;
        cv.notify_all();
    }
    let declare = a.recv().expect("queued declare answered");
    assert!(declare.contains(r#""ok":"declare""#), "{declare}");
    let add = a
        .recv()
        .expect("a drain never truncates an in-flight response");
    assert!(add.contains(r#""ok":"add""#), "{add}");
    assert_eq!(a.recv(), None, "the drained connection then closes");

    join.join().expect("server joins");
    // The listener is gone: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "a drained server must not accept new connections"
    );
}

fn snapshot_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rasc-serve-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn snapshot_dir_warm_restarts_across_server_generations() {
    let dir = snapshot_temp_dir("warm");

    // Generation 1: build state, capture it with the in-band command.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));
    assert!(c
        .roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Main","ann":["g"]}"#)
        .contains(r#""ok":"add""#));

    // Remote clients must not choose filesystem paths on the server.
    let r = c.roundtrip(r#"{"cmd":"snapshot","path":"/tmp/evil.snap"}"#);
    let parsed = Json::parse(&r).expect("valid JSON");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "client-chosen snapshot paths must be refused in serve mode: {r}"
    );

    let r = c.roundtrip(r#"{"cmd":"snapshot"}"#);
    assert!(
        r.contains(r#""ok":"snapshot""#) && r.contains("current.snap"),
        "{r}"
    );
    handle.shutdown();
    join.join().expect("server joins");
    assert!(
        dir.join("current.snap").exists(),
        "graceful shutdown must leave a checkpoint"
    );

    // Generation 2: a fresh server over the same directory warm-starts
    // every new connection from the captured solved form — names,
    // constraints, and annotations all answer without replay.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let r = c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Main","cons":"pc"}"#);
    assert!(
        r.contains(r#""result":true"#),
        "warm restart lost the solved form: {r}"
    );
    // The restored session keeps growing like any other.
    assert!(c
        .roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Other","ann":["g"]}"#)
        .contains(r#""ok":"add""#));
    let r = c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Other","cons":"pc"}"#);
    assert!(r.contains(r#""result":true"#), "{r}");

    handle.shutdown();
    join.join().expect("server joins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_base_image_degrades_to_a_cold_start() {
    let dir = snapshot_temp_dir("corrupt");
    std::fs::write(dir.join("current.snap"), b"RASCSNAP\x01torn-to-bits").expect("seed");

    // Binding must neither panic nor serve the torn image.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let r = c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Main","cons":"pc"}"#);
    assert!(
        r.contains(r#""code":"unknown_constructor""#) || r.contains(r#""code":"unknown_variable""#),
        "a corrupt base image must yield a cold start, not a mis-restore: {r}"
    );
    // The connection is fully usable; an explicit in-band restore of the
    // torn file reports the typed corruption error.
    let r = c.roundtrip(r#"{"cmd":"restore"}"#);
    let parsed = Json::parse(&r).expect("valid JSON");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("snapshot_corrupt"),
        "{r}"
    );
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));

    handle.shutdown();
    join.join().expect("server joins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn external_shutdown_flag_drains_and_checkpoints() {
    let dir = snapshot_temp_dir("flag");
    let flag = Arc::new(AtomicBool::new(false));
    let (handle, join) = spawn_server(ServeConfig {
        poll_millis: 5,
        snapshot_dir: Some(dir.clone()),
        shutdown_flag: Some(Arc::clone(&flag)),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut c = Client::connect(addr);
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));
    assert!(c
        .roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Main","ann":["g"]}"#)
        .contains(r#""ok":"add""#));
    assert!(c
        .roundtrip(r#"{"cmd":"snapshot"}"#)
        .contains(r#""ok":"snapshot""#));

    // Raising the externally wired flag (the CLI's SIGINT/SIGTERM
    // handler) initiates the same graceful drain as the admin command.
    flag.store(true, Ordering::SeqCst);
    assert!(handle.is_draining());
    assert_eq!(c.recv(), None, "drained connections close");
    join.join().expect("server joins");
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "a signal-drained server must stop accepting"
    );
    assert!(
        dir.join("current.snap").exists(),
        "signal-driven shutdown must still checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One raw HTTP exchange against the admin endpoint: returns the status
/// line and the body after the header block.
fn admin_exchange(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    use std::io::Read;
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header block");
    let status = head.lines().next().unwrap_or("").to_owned();
    (status, body.to_owned())
}

fn admin_get(addr: SocketAddr, path: &str) -> (String, String) {
    admin_exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn metrics_scrape_matches_client_side_request_count_exactly() {
    let (handle, join) = spawn_server(ServeConfig {
        threads: 4,
        admin_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let admin = handle.admin_addr().expect("admin listener is configured");

    // A fleet of clients issues a known number of requests, counted
    // client-side; joining the workers quiesces the server.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 6;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                assert!(c
                    .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
                    .contains(r#""ok":"declare""#));
                for j in 0..PER_CLIENT - 2 {
                    let r = c.roundtrip(&format!(
                        r#"{{"cmd":"add","lhs":"pc","rhs":"V{i}_{j}","ann":["g"]}}"#
                    ));
                    assert!(r.contains(r#""ok":"add""#), "{r}");
                }
                assert!(c
                    .roundtrip(r#"{"cmd":"stats"}"#)
                    .contains(r#""ok":"stats""#));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client");
    }

    let (status, page) = admin_get(admin, "/metrics");
    assert!(status.contains(" 200 "), "{status}");
    let summary = rasc_devtools::validate_prometheus(&page)
        .unwrap_or_else(|e| panic!("scrape must be a valid exposition page: {e}\n{page}"));
    assert_eq!(
        summary.values.get("serve_requests_total").copied(),
        Some((CLIENTS * PER_CLIENT) as f64),
        "scraped request count must equal the client-side count exactly:\n{page}"
    );
    assert_eq!(
        summary.values.get("serve_request_micros_count").copied(),
        Some((CLIENTS * PER_CLIENT) as f64),
        "every request must land in the latency histogram:\n{page}"
    );
    assert_eq!(
        summary
            .values
            .get("serve_connections_opened_total")
            .copied(),
        Some(CLIENTS as f64),
        "{page}"
    );

    // The in-process snapshot agrees with the scraped page.
    let snap = handle.metrics_snapshot();
    assert_eq!(
        snap.counters.get("serve.requests").copied(),
        Some((CLIENTS * PER_CLIENT) as u64)
    );

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn admin_endpoint_serves_stats_and_healthz_and_rejects_the_rest() {
    let (handle, join) = spawn_server(ServeConfig {
        admin_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    });
    let admin = handle.admin_addr().expect("admin listener is configured");

    let mut c = Client::connect(handle.addr());
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));

    // /healthz: a cold-started, non-draining server with no checkpoint.
    let (status, body) = admin_get(admin, "/healthz");
    assert!(status.contains(" 200 "), "{status}");
    let health = Json::parse(&body).expect("healthz is valid JSON");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("draining").and_then(Json::as_bool), Some(false));
    assert_eq!(
        health.get("warm_start").and_then(Json::as_bool),
        Some(false)
    );
    assert!(health.get("uptime_millis").is_some(), "{body}");
    assert_eq!(
        health.get("checkpoint_age_millis"),
        Some(&Json::Null),
        "no snapshot dir, so no checkpoint age: {body}"
    );

    // /stats: the JSON rendering of the same registry the scrape reads.
    let (status, body) = admin_get(admin, "/stats");
    assert!(status.contains(" 200 "), "{status}");
    let stats = Json::parse(&body).expect("stats is valid JSON");
    assert!(
        stats.get("counters").is_some() && stats.get("histograms").is_some(),
        "{body}"
    );

    // Query strings are stripped before routing.
    let (status, _) = admin_get(admin, "/metrics?format=prometheus");
    assert!(status.contains(" 200 "), "{status}");

    // Unknown paths 404; non-GET methods 405; both leave the server up.
    let (status, _) = admin_get(admin, "/nope");
    assert!(status.contains(" 404 "), "{status}");
    let (status, _) = admin_exchange(
        admin,
        "POST /metrics HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(status.contains(" 405 "), "{status}");
    let (status, _) = admin_get(admin, "/healthz");
    assert!(status.contains(" 200 "), "{status}");

    handle.shutdown();
    join.join().expect("server joins");
}

/// A `Write` handing every byte to a shared buffer — lets a test read
/// back what the server's [`rasc::serve::SlowLog`] wrote.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_log_records_requests_with_correlated_ids() {
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let (handle, join) = spawn_server(ServeConfig {
        admin_addr: Some("127.0.0.1:0".to_owned()),
        // A zero-millisecond threshold makes every request "slow", so the
        // log's shape is testable without timing games.
        slow_millis: Some(0),
        slow_log: Some(Arc::new(rasc::serve::SlowLog::to_writer(Box::new(
            buf.clone(),
        )))),
        ..ServeConfig::default()
    });

    let mut c = Client::connect(handle.addr());
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));
    // An erroring request: its response must carry the request id, and
    // its slow-log line must record the error outcome.
    let r = c.roundtrip(r#"{"cmd":"stats","scope":"bogus"}"#);
    let parsed = Json::parse(&r).expect("valid JSON");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "{r}"
    );
    let err_req = parsed
        .get("req")
        .and_then(Json::as_u64)
        .expect("error responses carry the request id");

    handle.shutdown();
    join.join().expect("server joins");

    let logged = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8 log");
    let lines: Vec<Json> = logged
        .lines()
        .map(|l| Json::parse(l).expect("slow-log lines are valid JSON"))
        .collect();
    assert_eq!(lines.len(), 2, "both requests were slow at 0ms:\n{logged}");
    for line in &lines {
        assert_eq!(line.get("slow").and_then(Json::as_bool), Some(true));
        assert!(line.get("micros").is_some(), "{logged}");
        assert!(line.get("fuel").is_some(), "{logged}");
        assert!(line.get("epoch_depth").is_some(), "{logged}");
        assert!(line.get("conn").is_some(), "{logged}");
    }
    assert_eq!(
        lines[0].get("cmd").and_then(Json::as_str),
        Some("declare"),
        "{logged}"
    );
    assert_eq!(
        lines[0].get("outcome").and_then(Json::as_str),
        Some("ok"),
        "{logged}"
    );
    assert_eq!(
        lines[1].get("cmd").and_then(Json::as_str),
        Some("stats"),
        "{logged}"
    );
    assert_eq!(
        lines[1].get("outcome").and_then(Json::as_str),
        Some("error:bad_request"),
        "{logged}"
    );
    // Correlation: the slow-log line for the failing request names the
    // same id the in-band error response carried.
    assert_eq!(
        lines[1].get("req").and_then(Json::as_u64),
        Some(err_req),
        "slow-log and error-response request ids must correlate:\n{logged}"
    );
}

#[test]
fn rasc_stats_cli_polls_the_admin_endpoint() {
    let (handle, join) = spawn_server(ServeConfig {
        admin_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    });
    let admin = handle.admin_addr().expect("admin listener is configured");

    let mut c = Client::connect(handle.addr());
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));

    let bin = env!("CARGO_BIN_EXE_rasc");
    let out = std::process::Command::new(bin)
        .args(["stats", "--addr", &admin.to_string()])
        .output()
        .expect("run rasc stats");
    assert!(out.status.success(), "{out:?}");
    let body = String::from_utf8(out.stdout).expect("utf8");
    let stats = Json::parse(body.trim()).expect("rasc stats prints the /stats JSON");
    assert!(
        stats
            .get("counters")
            .and_then(|cs| cs.get("serve.requests"))
            .is_some(),
        "{body}"
    );

    let out = std::process::Command::new(bin)
        .args(["stats", "--addr", &admin.to_string(), "--metrics"])
        .output()
        .expect("run rasc stats --metrics");
    assert!(out.status.success(), "{out:?}");
    let page = String::from_utf8(out.stdout).expect("utf8");
    rasc_devtools::validate_prometheus(&page)
        .unwrap_or_else(|e| panic!("rasc stats --metrics must print a valid page: {e}\n{page}"));

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn warm_restart_healthz_reports_the_snapshot_files_age() {
    let dir = snapshot_temp_dir("age");

    // Generation 1 leaves a checkpoint behind on graceful shutdown.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));
    assert!(c
        .roundtrip(r#"{"cmd":"snapshot"}"#)
        .contains(r#""ok":"snapshot""#));
    handle.shutdown();
    join.join().expect("server joins");

    // The image now ages on disk while no server is running.
    std::thread::sleep(Duration::from_millis(300));

    // Generation 2 must report the *file's* age, not its own uptime: a
    // freshly started process serving a 300ms-old image is the exact case
    // the old `Instant::now()` initialization got wrong.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        admin_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    });
    let admin = handle.admin_addr().expect("admin listener is configured");
    let (status, body) = admin_get(admin, "/healthz");
    assert!(status.contains(" 200 "), "{status}");
    let health = Json::parse(&body).expect("healthz is valid JSON");
    assert_eq!(health.get("warm_start").and_then(Json::as_bool), Some(true));
    let age = health
        .get("checkpoint_age_millis")
        .and_then(Json::as_u64)
        .expect("a warm start has a checkpoint age");
    let uptime = health
        .get("uptime_millis")
        .and_then(Json::as_u64)
        .expect("uptime is always present");
    assert!(
        age >= 250,
        "checkpoint age must include the image's on-disk age: got {age}ms ({body})"
    );
    assert!(
        age > uptime,
        "checkpoint age ({age}ms) must exceed process uptime ({uptime}ms) right after a \
         warm restart — equal values mean the age was reset to process start ({body})"
    );

    handle.shutdown();
    join.join().expect("server joins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_base_image_is_counted_not_silently_swallowed() {
    let dir = snapshot_temp_dir("eisdir");
    // A *directory* where the image file should be: reads fail with an IO
    // error that is not NotFound — the "disk is broken" case that must be
    // distinguishable from a clean first boot.
    std::fs::create_dir_all(dir.join("current.snap")).expect("seed dir");

    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });

    let snap = handle.metrics_snapshot();
    assert_eq!(
        snap.counters.get("serve.base.io_errors").copied(),
        Some(1),
        "an unreadable (but present) base image must be counted: {:?}",
        snap.counters
    );
    assert_eq!(
        snap.counters.get("snap.corrupt_rejected").copied(),
        None,
        "an IO failure is not a corruption: {:?}",
        snap.counters
    );

    // The server degraded to a functional cold start.
    let mut c = Client::connect(handle.addr());
    let r = c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Main","cons":"pc"}"#);
    assert!(
        r.contains(r#""code":"unknown_constructor""#) || r.contains(r#""code":"unknown_variable""#),
        "cold start expected: {r}"
    );
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));

    handle.shutdown();
    join.join().expect("server joins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_forks_race_in_band_snapshot_swaps() {
    let dir = snapshot_temp_dir("race");
    let (handle, join) = spawn_server(ServeConfig {
        threads: 8,
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Seed the shared base: one cold connection builds state and captures
    // it, making every later connection fork instead of restore.
    let mut seed = Client::connect(addr);
    assert!(seed
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));
    assert!(seed
        .roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Base","ann":["g"]}"#)
        .contains(r#""ok":"add""#));
    assert!(seed
        .roundtrip(r#"{"cmd":"snapshot"}"#)
        .contains(r#""ok":"snapshot""#));

    // A writer keeps swapping the shared base `Arc` via in-band snapshots
    // while a fleet of readers forks from whichever base is current.
    const READERS: usize = 6;
    const ROUNDS: usize = 5;
    let writer = std::thread::spawn(move || {
        let mut w = Client::connect(addr);
        for j in 0..READERS * 2 {
            let r = w.roundtrip(&format!(
                r#"{{"cmd":"add","lhs":"pc","rhs":"W{j}","ann":["g"]}}"#
            ));
            assert!(r.contains(r#""ok":"add""#), "{r}");
            let r = w.roundtrip(r#"{"cmd":"snapshot"}"#);
            assert!(r.contains(r#""ok":"snapshot""#), "{r}");
        }
    });
    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    let mut c = Client::connect(addr);
                    // Every base the writer publishes contains the seeded
                    // fact, so every fork must see it.
                    let r =
                        c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Base","cons":"pc"}"#);
                    assert!(r.contains(r#""result":true"#), "reader {t}.{i}: {r}");
                    // Private growth stays private to this fork.
                    let r = c.roundtrip(&format!(
                        r#"{{"cmd":"add","lhs":"pc","rhs":"R{t}_{i}","ann":["g"]}}"#
                    ));
                    assert!(r.contains(r#""ok":"add""#), "reader {t}.{i}: {r}");
                    let r = c.roundtrip(&format!(
                        r#"{{"cmd":"query","kind":"occurs","var":"R{t}_{i}","cons":"pc"}}"#
                    ));
                    assert!(r.contains(r#""result":true"#), "reader {t}.{i}: {r}");
                    let other = (t + 1) % READERS;
                    let r = c.roundtrip(&format!(
                        r#"{{"cmd":"query","kind":"occurs","var":"R{other}_{i}","cons":"pc"}}"#
                    ));
                    assert!(
                        r.contains(r#""code":"unknown_variable""#),
                        "forks must be isolated — reader {t}.{i} saw {other}'s state: {r}"
                    );
                }
            })
        })
        .collect();
    writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }

    // Every reader connection after the seed snapshot forked the shared
    // base rather than restoring from bytes.
    let snap = handle.metrics_snapshot();
    let warm = snap.counters.get("serve.warm_starts").copied().unwrap_or(0);
    assert!(
        warm >= (READERS * ROUNDS) as u64,
        "expected at least {} forked connections, saw {warm}: {:?}",
        READERS * ROUNDS,
        snap.counters
    );
    assert_eq!(
        snap.counters.get("serve.base.refresh_failures").copied(),
        None,
        "no snapshot swap may fail decoding: {:?}",
        snap.counters
    );

    handle.shutdown();
    join.join().expect("server joins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn solve_threads_server_matches_sequential_answers() {
    // The same conversation against a sequential server and a
    // `solve_threads: 4` server must produce byte-identical response
    // lines — the parallel engine is a latency knob, never a semantics
    // knob (`rasc serve --solve-threads N` smoke for CI).
    let conversation: Vec<String> = {
        let mut lines = vec![r#"{"cmd":"declare","cons":"pc"}"#.to_owned()];
        // A dense little diamond so the bulk drain has real rounds.
        for i in 0..24 {
            lines.push(format!(
                r#"{{"cmd":"add","lhs":"pc","rhs":"V{i}","ann":["g"]}}"#
            ));
            lines.push(format!(
                r#"{{"cmd":"add","lhs":"V{i}","rhs":"V{}","ann":["k"]}}"#,
                (i + 7) % 24
            ));
        }
        lines.push(r#"{"cmd":"query","kind":"occurs","var":"V3","cons":"pc"}"#.to_owned());
        lines.push(r#"{"cmd":"stats"}"#.to_owned());
        lines
    };

    let transcript = |solve_threads: usize| -> Vec<String> {
        let (handle, join) = spawn_server(ServeConfig {
            solve_threads,
            ..ServeConfig::default()
        });
        let mut c = Client::connect(handle.addr());
        let out: Vec<String> = conversation.iter().map(|l| c.roundtrip(l)).collect();
        drop(c);
        handle.shutdown();
        join.join().expect("server joins");
        out
    };

    let sequential = transcript(1);
    let parallel = transcript(4);
    assert_eq!(
        sequential, parallel,
        "solve-threads changed an observable answer"
    );
    assert!(
        sequential.last().expect("stats line").contains("facts"),
        "stats response should report solver facts: {:?}",
        sequential.last()
    );
}
