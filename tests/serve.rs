//! Integration tests for `rasc-serve`: concurrent loopback clients,
//! hostile input over TCP, admission control, graceful shutdown with a
//! request deterministically in flight, and crash-safe warm restart
//! from a snapshot directory.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rasc::automata::{Alphabet, Dfa};
use rasc::constraints::Clock;
use rasc::inc::json::Json;
use rasc::inc::EngineCaps;
use rasc::serve::{ServeConfig, Server, ServerHandle};
use rasc_devtools::SteppedClock;

/// A connected client speaking one JSON line per request.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
            line: String::new(),
        }
    }

    fn send(&mut self, request: &str) {
        self.writer.write_all(request.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
    }

    /// Reads one response line; `None` on clean EOF.
    fn recv(&mut self) -> Option<String> {
        self.line.clear();
        match self.reader.read_line(&mut self.line) {
            Ok(0) => None,
            Ok(_) => Some(self.line.trim_end().to_owned()),
            Err(e) => panic!("read failed: {e}"),
        }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        self.send(request);
        self.recv().expect("server closed unexpectedly")
    }
}

fn spawn_server(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let mut sigma = Alphabet::new();
    let (g, k) = (sigma.intern("g"), sigma.intern("k"));
    let machine = Dfa::one_bit(&sigma, g, k);
    let server = Server::bind("127.0.0.1:0", sigma, &machine, config).expect("bind");
    let (handle, join) = server.spawn();
    let join = std::thread::spawn(move || {
        join.join().expect("server thread").expect("server io");
    });
    (handle, join)
}

#[test]
fn concurrent_clients_get_isolated_sessions() {
    let (handle, join) = spawn_server(ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Every client declares the same constructor name and builds a
    // different system under it — no cross-talk is observable.
    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let r = c.roundtrip(r#"{"cmd":"declare","cons":"pc"}"#);
                assert!(r.contains(r#""ok":"declare""#), "client {i}: {r}");
                // `g` drives the one-bit machine to its accepting state,
                // so the occurrence is annotation-live.
                let r = c.roundtrip(&format!(
                    r#"{{"cmd":"add","lhs":"pc","rhs":"Var{i}","ann":["g"]}}"#
                ));
                assert!(r.contains(r#""ok":"add""#), "client {i}: {r}");
                // Our own variable occurs; the neighbours' never do.
                let r = c.roundtrip(&format!(
                    r#"{{"cmd":"query","kind":"occurs","var":"Var{i}","cons":"pc"}}"#
                ));
                assert!(r.contains(r#""result":true"#), "client {i}: {r}");
                let other = (i + 1) % 4;
                let r = c.roundtrip(&format!(
                    r#"{{"cmd":"query","kind":"occurs","var":"Var{other}","cons":"pc"}}"#
                ));
                assert!(
                    r.contains(r#""code":"unknown_variable""#),
                    "sessions must be isolated — client {i} saw {other}'s state: {r}"
                );
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client");
    }

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn hostile_tcp_input_never_kills_the_connection() {
    let (handle, join) = spawn_server(ServeConfig::default());
    let addr = handle.addr();

    let mut rng = rasc_devtools::Rng::new(0xfeed_beef);
    let mut c = Client::connect(addr);
    let mut expected = 0usize;
    let mut got = 0usize;
    for _ in 0..400 {
        let line = rasc_devtools::hostile::hostile_line(&mut rng);
        c.send(&line);
        if !rasc_devtools::hostile::is_silent(&line) {
            expected += 1;
            let response = c.recv().expect("connection must survive hostile input");
            let parsed = Json::parse(&response).expect("responses are valid JSON");
            assert!(
                parsed.get("ok").is_some() || parsed.get("error").is_some(),
                "every response is a typed ok/error: {response}"
            );
            got += 1;
        }
    }
    assert_eq!(got, expected);

    // The same connection still serves well-formed requests afterwards.
    let r = c.roundtrip(r#"{"cmd":"stats"}"#);
    assert!(r.contains(r#""ok":"stats""#), "{r}");

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn overload_is_a_typed_in_band_error() {
    let (handle, join) = spawn_server(ServeConfig {
        threads: 1,
        max_connections: 1,
        poll_millis: 5,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Client A occupies the only slot (a completed round-trip proves it
    // was admitted, not merely connected).
    let mut a = Client::connect(addr);
    let r = a.roundtrip(r#"{"cmd":"declare","cons":"pc"}"#);
    assert!(r.contains(r#""ok":"declare""#), "{r}");

    // Client B is refused with a typed error, then EOF.
    let mut b = Client::connect(addr);
    let refusal = b.recv().expect("overload answers in-band before closing");
    let parsed = Json::parse(&refusal).expect("refusal is valid JSON");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("overloaded"),
        "{refusal}"
    );
    assert_eq!(b.recv(), None, "refused connections close after the error");

    // Client A is unaffected.
    let r = a.roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Main"}"#);
    assert!(r.contains(r#""ok":"add""#), "{r}");

    handle.shutdown();
    join.join().expect("server joins");
}

#[test]
fn per_request_caps_clamp_client_limits() {
    let (handle, join) = spawn_server(ServeConfig {
        caps: EngineCaps {
            max_steps: Some(1),
            ..EngineCaps::unlimited()
        },
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut c = Client::connect(addr);
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains("ok"));
    // The client asks for a huge budget; the server-wide cap wins. A
    // growing chain makes each add dearer until the one-step cap bites,
    // and the failing add rolls back transactionally.
    assert!(c
        .roundtrip(r#"{"cmd":"limits","max_steps":1000000}"#)
        .contains(r#""ok":"limits""#));
    let mut requests = vec![r#"{"cmd":"add","lhs":"pc","rhs":"V0","ann":["g"]}"#.to_owned()];
    for i in 0..10 {
        requests.push(format!(
            r#"{{"cmd":"add","lhs":"V{i}","rhs":"V{}","ann":["g"]}}"#,
            i + 1
        ));
    }
    let mut clamped = false;
    for req in &requests {
        let r = c.roundtrip(req);
        if r.contains(r#""code":"budget_exhausted""#) {
            assert!(r.contains(r#""rolled_back":true"#), "{r}");
            clamped = true;
            break;
        }
        assert!(r.contains(r#""ok":"add""#), "{r}");
    }
    assert!(
        clamped,
        "a one-step server cap must clamp the client's million-step budget"
    );
    // The connection survives the refusal.
    assert!(c
        .roundtrip(r#"{"cmd":"stats"}"#)
        .contains(r#""ok":"stats""#));

    handle.shutdown();
    join.join().expect("server joins");
}

/// A [`Clock`] that signals when first consulted, then blocks until
/// released — making "a request is in flight on a worker" a
/// deterministic state instead of a sleep-based race.
#[derive(Debug)]
struct GateClock {
    entered: mpsc::Sender<()>,
    gate: Arc<(Mutex<bool>, Condvar)>,
    signalled: AtomicBool,
    inner: SteppedClock,
}

impl Clock for GateClock {
    fn now_millis(&self) -> u64 {
        if !self.signalled.swap(true, Ordering::SeqCst) {
            let _ = self.entered.send(());
            let (open, cv) = &*self.gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }
        self.inner.now_millis()
    }
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let (entered_tx, entered_rx) = mpsc::channel();
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let clock = Arc::new(GateClock {
        entered: entered_tx,
        gate: Arc::clone(&gate),
        signalled: AtomicBool::new(false),
        inner: SteppedClock::default(),
    });
    // A (huge) deadline cap makes every add consult the clock when its
    // budget starts — which is where the gate holds the request open.
    let (handle, join) = spawn_server(ServeConfig {
        threads: 2,
        poll_millis: 5,
        caps: EngineCaps {
            max_millis: Some(u64::MAX / 4),
            ..EngineCaps::unlimited()
        },
        clock: Some(clock),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Client A's add blocks on the gate inside its budget — in flight.
    let mut a = Client::connect(addr);
    a.send(r#"{"cmd":"declare","cons":"pc"}"#);
    a.send(r#"{"cmd":"add","lhs":"pc","rhs":"Main"}"#);
    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("the add must reach its budget's clock");

    // Client B issues the in-band shutdown command.
    let mut b = Client::connect(addr);
    let r = b.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert!(
        r.contains(r#""ok":"shutdown""#) && r.contains(r#""draining":true"#),
        "{r}"
    );
    assert_eq!(b.recv(), None, "the admin connection closes after the ack");
    assert!(handle.is_draining());

    // Release the gate: the in-flight request completes and its full
    // response is delivered before the connection closes.
    {
        let (open, cv) = &*gate;
        *open.lock().unwrap() = true;
        cv.notify_all();
    }
    let declare = a.recv().expect("queued declare answered");
    assert!(declare.contains(r#""ok":"declare""#), "{declare}");
    let add = a
        .recv()
        .expect("a drain never truncates an in-flight response");
    assert!(add.contains(r#""ok":"add""#), "{add}");
    assert_eq!(a.recv(), None, "the drained connection then closes");

    join.join().expect("server joins");
    // The listener is gone: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "a drained server must not accept new connections"
    );
}

fn snapshot_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rasc-serve-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn snapshot_dir_warm_restarts_across_server_generations() {
    let dir = snapshot_temp_dir("warm");

    // Generation 1: build state, capture it with the in-band command.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));
    assert!(c
        .roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Main","ann":["g"]}"#)
        .contains(r#""ok":"add""#));

    // Remote clients must not choose filesystem paths on the server.
    let r = c.roundtrip(r#"{"cmd":"snapshot","path":"/tmp/evil.snap"}"#);
    let parsed = Json::parse(&r).expect("valid JSON");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "client-chosen snapshot paths must be refused in serve mode: {r}"
    );

    let r = c.roundtrip(r#"{"cmd":"snapshot"}"#);
    assert!(
        r.contains(r#""ok":"snapshot""#) && r.contains("current.snap"),
        "{r}"
    );
    handle.shutdown();
    join.join().expect("server joins");
    assert!(
        dir.join("current.snap").exists(),
        "graceful shutdown must leave a checkpoint"
    );

    // Generation 2: a fresh server over the same directory warm-starts
    // every new connection from the captured solved form — names,
    // constraints, and annotations all answer without replay.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let r = c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Main","cons":"pc"}"#);
    assert!(
        r.contains(r#""result":true"#),
        "warm restart lost the solved form: {r}"
    );
    // The restored session keeps growing like any other.
    assert!(c
        .roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Other","ann":["g"]}"#)
        .contains(r#""ok":"add""#));
    let r = c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Other","cons":"pc"}"#);
    assert!(r.contains(r#""result":true"#), "{r}");

    handle.shutdown();
    join.join().expect("server joins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_base_image_degrades_to_a_cold_start() {
    let dir = snapshot_temp_dir("corrupt");
    std::fs::write(dir.join("current.snap"), b"RASCSNAP\x01torn-to-bits").expect("seed");

    // Binding must neither panic nor serve the torn image.
    let (handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let r = c.roundtrip(r#"{"cmd":"query","kind":"occurs","var":"Main","cons":"pc"}"#);
    assert!(
        r.contains(r#""code":"unknown_constructor""#) || r.contains(r#""code":"unknown_variable""#),
        "a corrupt base image must yield a cold start, not a mis-restore: {r}"
    );
    // The connection is fully usable; an explicit in-band restore of the
    // torn file reports the typed corruption error.
    let r = c.roundtrip(r#"{"cmd":"restore"}"#);
    let parsed = Json::parse(&r).expect("valid JSON");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("snapshot_corrupt"),
        "{r}"
    );
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));

    handle.shutdown();
    join.join().expect("server joins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn external_shutdown_flag_drains_and_checkpoints() {
    let dir = snapshot_temp_dir("flag");
    let flag = Arc::new(AtomicBool::new(false));
    let (handle, join) = spawn_server(ServeConfig {
        poll_millis: 5,
        snapshot_dir: Some(dir.clone()),
        shutdown_flag: Some(Arc::clone(&flag)),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut c = Client::connect(addr);
    assert!(c
        .roundtrip(r#"{"cmd":"declare","cons":"pc"}"#)
        .contains(r#""ok":"declare""#));
    assert!(c
        .roundtrip(r#"{"cmd":"add","lhs":"pc","rhs":"Main","ann":["g"]}"#)
        .contains(r#""ok":"add""#));
    assert!(c
        .roundtrip(r#"{"cmd":"snapshot"}"#)
        .contains(r#""ok":"snapshot""#));

    // Raising the externally wired flag (the CLI's SIGINT/SIGTERM
    // handler) initiates the same graceful drain as the admin command.
    flag.store(true, Ordering::SeqCst);
    assert!(handle.is_draining());
    assert_eq!(c.recv(), None, "drained connections close");
    join.join().expect("server joins");
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "a signal-drained server must stop accepting"
    );
    assert!(
        dir.join("current.snap").exists(),
        "signal-driven shutdown must still checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
