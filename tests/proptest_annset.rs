//! Property test: the indexed `AnnSet`/entry-log storage inside the
//! solver is pure representation — solved forms must be *identical* to
//! those of a naive reference solver (chaotic iteration over flat
//! `BTreeSet`s of facts, no indexes, no cycle elimination), on random
//! constraint systems, and must stay identical across
//! `push_epoch`/`pop_epoch` rollback.

use std::collections::BTreeSet;

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::{Algebra, AnnId, MonoidAlgebra};
use rasc::constraints::{SetExpr, System, VarId};
use rasc_devtools::{forall, prop_assert_eq, Config, Rng};

const N_VARS: usize = 8;
const PROBE: usize = 0;
const O: usize = 1;

/// Same constraint shapes as `proptest_config_equivalence`: variable
/// edges (possibly cyclic), probe constants, `o`-wraps, projections, and
/// constructor sinks.
#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn arb_cons(rng: &mut Rng, max: usize) -> Vec<RandCon> {
    (0..rng.gen_range(1..max)).map(|_| arb_con(rng)).collect()
}

/// Constructor sources/sinks in the reference: `(head, args)` where the
/// head is `PROBE` or `O`.
type RSrc = (usize, Vec<usize>);

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum RSnk {
    Cons(usize, Vec<usize>),
    Proj(usize, usize, usize),
}

/// The naive solver: flat fact sets, no per-endpoint indexes, no
/// constructor buckets, no union-find — just the §3.1 resolution rules
/// run by chaotic iteration until nothing new appears. Deliberately dumb:
/// any representation trick in the real solver that changes semantics
/// shows up as a divergence from this.
struct RefSolver {
    alg: MonoidAlgebra,
    edges: BTreeSet<(usize, usize, AnnId)>,
    lbs: BTreeSet<(usize, RSrc, AnnId)>,
    ubs: BTreeSet<(usize, RSnk, AnnId)>,
    clashed: bool,
}

impl RefSolver {
    fn new(machine: &Dfa) -> RefSolver {
        RefSolver {
            alg: MonoidAlgebra::new(machine),
            edges: BTreeSet::new(),
            lbs: BTreeSet::new(),
            ubs: BTreeSet::new(),
            clashed: false,
        }
    }

    fn add_edge(&mut self, x: usize, y: usize, f: AnnId) -> bool {
        if (x == y && f == self.alg.identity()) || !self.alg.is_useful(f) {
            return false;
        }
        self.edges.insert((x, y, f))
    }

    fn add_lb(&mut self, x: usize, src: RSrc, g: AnnId) -> bool {
        if !self.alg.is_useful(g) {
            return false;
        }
        self.lbs.insert((x, src, g))
    }

    fn add_ub(&mut self, x: usize, snk: RSnk, h: AnnId) -> bool {
        if !self.alg.is_useful(h) {
            return false;
        }
        self.ubs.insert((x, snk, h))
    }

    fn add(&mut self, syms: &[SymbolId], con: &RandCon) {
        let ann = |alg: &mut MonoidAlgebra, s: Option<u8>| match s {
            Some(i) => alg.word(&[syms[i as usize]]),
            None => alg.identity(),
        };
        let eps = self.alg.identity();
        match *con {
            RandCon::Edge(a, b, s) => {
                let f = ann(&mut self.alg, s);
                self.add_edge(a, b, f);
            }
            RandCon::Const(v, s) => {
                let f = ann(&mut self.alg, s);
                self.add_lb(v, (PROBE, vec![]), f);
            }
            RandCon::Wrap(a, b) => {
                self.add_lb(b, (O, vec![a]), eps);
            }
            RandCon::Proj(a, b) => {
                self.add_ub(a, RSnk::Proj(O, 0, b), eps);
            }
            RandCon::Sink(a, b) => {
                self.add_ub(a, RSnk::Cons(O, vec![b]), eps);
            }
        }
    }

    fn solve(&mut self) {
        loop {
            // Chaotic iteration over full snapshots of the fact sets —
            // deliberately the dumbest correct strategy.
            let edges: Vec<(usize, usize, AnnId)> = self.edges.iter().cloned().collect();
            let lbs: Vec<(usize, RSrc, AnnId)> = self.lbs.iter().cloned().collect();
            let ubs: Vec<(usize, RSnk, AnnId)> = self.ubs.iter().cloned().collect();
            let mut changed = false;
            for &(x, y, f) in &edges {
                // Trans-Lb: c(…) ⊆^g X, X ⊆^f Y ⇒ c(…) ⊆^{f∘g} Y.
                for (vx, src, g) in &lbs {
                    if *vx == x {
                        let h = self.alg.compose(f, *g);
                        changed |= self.add_lb(y, src.clone(), h);
                    }
                }
                // Trans-Ub: X ⊆^f Y, Y ⊆^h snk ⇒ X ⊆^{h∘f} snk.
                for (vy, snk, h) in &ubs {
                    if *vy == y {
                        let c = self.alg.compose(*h, f);
                        changed |= self.add_ub(x, snk.clone(), c);
                    }
                }
            }
            // Meet: c(…) ⊆^g X, X ⊆^h snk ⇒ resolve under h∘g.
            for (vx, src, g) in &lbs {
                for (vy, snk, h) in &ubs {
                    if vx != vy {
                        continue;
                    }
                    let f = self.alg.compose(*h, *g);
                    if !self.alg.is_useful(f) {
                        continue;
                    }
                    match snk {
                        RSnk::Cons(head, args) => {
                            if src.0 != *head {
                                self.clashed = true;
                            } else {
                                for (i, &sa) in src.1.iter().enumerate() {
                                    // `o` is covariant in every position.
                                    changed |= self.add_edge(sa, args[i], f);
                                }
                            }
                        }
                        RSnk::Proj(head, index, target) => {
                            if src.0 == *head {
                                changed |= self.add_edge(src.1[*index], *target, f);
                            }
                        }
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Sorted, described annotations of `head`-headed lower bounds of `v`
    /// — the reference mirror of `System::lower_bound_annotations`.
    fn lower_bound_annotations(&self, v: usize, head: usize) -> Vec<String> {
        let mut out: Vec<String> = self
            .lbs
            .iter()
            .filter(|(vx, src, _)| *vx == v && src.0 == head)
            .map(|(_, _, a)| self.alg.describe(*a))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Per-variable observable state: probe bounds, `o` bounds — plus global
/// consistency. Rendered via `describe` so annotation ids from different
/// algebra instances compare.
type Signature = (Vec<(Vec<String>, Vec<String>)>, bool);

fn sys_signature(
    sys: &System<MonoidAlgebra>,
    vars: &[VarId],
    probe: rasc::constraints::ConsId,
    o: rasc::constraints::ConsId,
) -> Signature {
    let per_var = vars
        .iter()
        .map(|&v| {
            let described = |anns: Vec<AnnId>| {
                let mut s: Vec<String> = anns
                    .into_iter()
                    .map(|a| sys.algebra().describe(a))
                    .collect();
                s.sort();
                s.dedup();
                s
            };
            (
                described(sys.lower_bound_annotations(v, probe)),
                described(sys.lower_bound_annotations(v, o)),
            )
        })
        .collect();
    (per_var, sys.is_consistent())
}

fn ref_signature(machine: &Dfa, syms: &[SymbolId], cons: &[RandCon]) -> Signature {
    let mut r = RefSolver::new(machine);
    for c in cons {
        r.add(syms, c);
    }
    r.solve();
    let per_var = (0..N_VARS)
        .map(|v| {
            (
                r.lower_bound_annotations(v, PROBE),
                r.lower_bound_annotations(v, O),
            )
        })
        .collect();
    (per_var, !r.clashed)
}

fn machine() -> (Alphabet, Dfa) {
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

fn apply(
    sys: &mut System<MonoidAlgebra>,
    vars: &[VarId],
    probe: rasc::constraints::ConsId,
    o: rasc::constraints::ConsId,
    syms: &[SymbolId],
    con: &RandCon,
) {
    match *con {
        RandCon::Edge(a, b, s) => {
            let ann = match s {
                Some(i) => sys.algebra_mut().word(&[syms[i as usize]]),
                None => sys.algebra().identity(),
            };
            sys.add_ann(SetExpr::var(vars[a]), SetExpr::var(vars[b]), ann)
                .unwrap();
        }
        RandCon::Const(v, s) => {
            let ann = match s {
                Some(i) => sys.algebra_mut().word(&[syms[i as usize]]),
                None => sys.algebra().identity(),
            };
            sys.add_ann(SetExpr::cons(probe, []), SetExpr::var(vars[v]), ann)
                .unwrap();
        }
        RandCon::Wrap(a, b) => {
            sys.add(SetExpr::cons_vars(o, [vars[a]]), SetExpr::var(vars[b]))
                .unwrap();
        }
        RandCon::Proj(a, b) => {
            sys.add(SetExpr::proj(o, 0, vars[a]), SetExpr::var(vars[b]))
                .unwrap();
        }
        RandCon::Sink(a, b) => {
            sys.add(SetExpr::var(vars[a]), SetExpr::cons_vars(o, [vars[b]]))
                .unwrap();
        }
    }
}

#[test]
fn indexed_storage_matches_naive_reference_across_rollback() {
    forall(
        "indexed_storage_matches_naive_reference_across_rollback",
        Config::cases(96),
        |rng| (arb_cons(rng, 18), arb_cons(rng, 12)),
        |(base, extra)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();

            let mut sys = System::new(MonoidAlgebra::new(&dfa));
            let vars: Vec<VarId> = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
            let probe = sys.constructor("probe", &[]);
            let o = sys.constructor("o", &[rasc::constraints::Variance::Covariant]);

            for c in base {
                apply(&mut sys, &vars, probe, o, &syms, c);
            }
            sys.solve();
            let base_sig = sys_signature(&sys, &vars, probe, o);
            prop_assert_eq!(
                &base_sig,
                &ref_signature(&dfa, &syms, base),
                "indexed solver diverged from naive reference on the base system"
            );

            // Extend inside an epoch: still must match the reference on
            // the concatenated constraint list.
            sys.push_epoch();
            for c in extra {
                apply(&mut sys, &vars, probe, o, &syms, c);
            }
            sys.solve();
            let all: Vec<RandCon> = base.iter().cloned().chain(extra.iter().cloned()).collect();
            prop_assert_eq!(
                &sys_signature(&sys, &vars, probe, o),
                &ref_signature(&dfa, &syms, &all),
                "indexed solver diverged from naive reference inside the epoch"
            );

            // Rollback must restore exactly the base solved form.
            sys.pop_epoch();
            prop_assert_eq!(
                &sys_signature(&sys, &vars, probe, o),
                &base_sig,
                "rollback did not restore the base solved form"
            );

            // And the rolled-back system must stay fully usable: re-adding
            // the same increment re-derives the same fixpoint.
            for c in extra {
                apply(&mut sys, &vars, probe, o, &syms, c);
            }
            sys.solve();
            prop_assert_eq!(
                &sys_signature(&sys, &vars, probe, o),
                &ref_signature(&dfa, &syms, &all),
                "re-adding the increment after rollback diverged"
            );
            Ok(())
        },
    );
}
