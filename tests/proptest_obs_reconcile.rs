//! Property test for the observability subsystem (`rasc-obs`): the
//! counters a [`Recorder`] collects must reconcile *exactly* with the
//! solver's own [`SolverStats`] — on random systems, at every solve
//! boundary, and across `push_epoch`/`pop_epoch` rollback.
//!
//! The solver batches hot-path counter deltas and flushes them when a
//! bounded solve returns and when an epoch pop finishes, as matched
//! added/removed (or …/rolled_back) pairs. So for a subscriber installed
//! for the system's whole lifetime, each *net* count must equal the
//! corresponding statistic: e.g. `solver.edges.added −
//! solver.edges.removed == stats().edges`, and `solver.facts −
//! solver.facts.rolled_back == stats().facts_processed`. Epoch events
//! must balance too: every push is eventually popped, committed, or
//! still open.

use std::sync::Arc;

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::MonoidAlgebra;
use rasc::constraints::{
    Budget, ConsId, SetExpr, SolverConfig, SolverStats, System, VarId, Variance,
};
use rasc::obs::{scoped, Recorder};
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng};

const N_VARS: usize = 6;

/// Random surface constraints over a small fixed shape (mirrors the
/// incremental-equivalence suite's generator).
#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn machine() -> (Alphabet, Dfa) {
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

struct Shape {
    vars: Vec<VarId>,
    probe: ConsId,
    o: ConsId,
}

fn declare(sys: &mut System<MonoidAlgebra>) -> Shape {
    let vars = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    Shape { vars, probe, o }
}

fn apply(sys: &mut System<MonoidAlgebra>, shape: &Shape, syms: &[SymbolId], c: &RandCon) {
    let ann = |sys: &mut System<MonoidAlgebra>, s: &Option<u8>| match s {
        Some(i) => {
            let sym = syms[*i as usize];
            sys.algebra_mut().word(&[sym])
        }
        None => {
            use rasc::constraints::algebra::Algebra;
            sys.algebra().identity()
        }
    };
    match *c {
        RandCon::Edge(a, b, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(SetExpr::var(shape.vars[a]), SetExpr::var(shape.vars[b]), w)
                .unwrap();
        }
        RandCon::Const(v, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(
                SetExpr::cons(shape.probe, []),
                SetExpr::var(shape.vars[v]),
                w,
            )
            .unwrap();
        }
        RandCon::Wrap(a, b) => {
            sys.add(
                SetExpr::cons_vars(shape.o, [shape.vars[a]]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Proj(a, b) => {
            sys.add(
                SetExpr::proj(shape.o, 0, shape.vars[a]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Sink(a, b) => {
            sys.add(
                SetExpr::var(shape.vars[a]),
                SetExpr::cons_vars(shape.o, [shape.vars[b]]),
            )
            .unwrap();
        }
    }
}

/// Every net recorder count must equal its solver statistic. Called only
/// at flush boundaries (after an unbounded solve or a finished pop).
fn reconcile(rec: &Recorder, stats: &SolverStats, n_clashes: usize) -> Result<(), String> {
    let net = |added: &str, removed: &str| -> i128 {
        i128::from(rec.counter_value(added)) - i128::from(rec.counter_value(removed))
    };
    let checks: [(&str, &str, usize); 9] = [
        ("solver.edges.added", "solver.edges.removed", stats.edges),
        ("solver.lbs.added", "solver.lbs.removed", stats.lower_bounds),
        ("solver.ubs.added", "solver.ubs.removed", stats.upper_bounds),
        (
            "solver.facts",
            "solver.facts.rolled_back",
            stats.facts_processed,
        ),
        ("solver.fuel", "solver.fuel.rolled_back", stats.fuel_spent),
        (
            "solver.cycles.collapsed",
            "solver.cycles.uncollapsed",
            stats.cycles_collapsed,
        ),
        ("solver.clashes", "solver.clashes.rolled_back", n_clashes),
        (
            "solver.interruptions",
            "solver.interruptions.rolled_back",
            stats.interruptions,
        ),
        (
            "solver.depth_limit_hits",
            "solver.depth_limit_hits.rolled_back",
            stats.depth_limit_hits,
        ),
    ];
    for (added, removed, want) in checks {
        prop_assert_eq!(
            net(added, removed),
            want as i128,
            "`{added}` − `{removed}` must equal the solver statistic"
        );
    }
    Ok(())
}

#[test]
fn recorder_counters_reconcile_with_solver_stats() {
    let (sigma, dfa) = machine();
    let syms: Vec<SymbolId> = sigma.symbols().collect();
    forall(
        "recorder_counters_reconcile_with_solver_stats",
        Config::cases(64),
        |rng| (0..rng.gen_range(1..20)).map(|_| arb_con(rng)).collect(),
        |cons: &Vec<RandCon>| {
            let configs = [
                SolverConfig::default(),
                SolverConfig {
                    cycle_elimination: false,
                    projection_merging: false,
                    ..SolverConfig::default()
                },
            ];
            for config in configs {
                // The recorder is installed before the system exists, so
                // it observes every mutation of the system's lifetime.
                let rec = Arc::new(Recorder::new());
                scoped(Arc::clone(&rec) as _, || {
                    let mut sys = System::with_config(MonoidAlgebra::new(&dfa), config);
                    let shape = declare(&mut sys);
                    let (first, second) = cons.split_at(cons.len() / 2);

                    for c in first {
                        apply(&mut sys, &shape, &syms, c);
                    }
                    sys.solve();
                    reconcile(&rec, &sys.stats(), sys.clashes().len())?;

                    // Speculative epoch: more constraints, a deliberately
                    // starved bounded solve (spends fuel, usually
                    // interrupts), a finishing solve — then roll it all
                    // back. The net counts must track every phase.
                    sys.push_epoch();
                    for c in second {
                        apply(&mut sys, &shape, &syms, c);
                    }
                    let _ = sys.solve_bounded(&Budget::unlimited().with_steps(2));
                    sys.solve();
                    reconcile(&rec, &sys.stats(), sys.clashes().len())?;

                    prop_assert!(sys.pop_epoch(), "epoch must pop");
                    reconcile(&rec, &sys.stats(), sys.clashes().len())?;

                    // Epoch events balance: every push was popped,
                    // committed, or is still open (none here).
                    prop_assert_eq!(
                        rec.counter_value("solver.epochs.pushed"),
                        rec.counter_value("solver.epochs.popped")
                            + rec.counter_value("solver.epochs.committed")
                            + sys.epoch_depth() as u64,
                        "epoch push/pop/commit events must balance"
                    );
                    Ok(())
                })?;
            }
            Ok(())
        },
    );
}
