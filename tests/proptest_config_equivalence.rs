//! Property test: the §8 solver optimizations (cycle elimination,
//! projection merging) must be *semantics-preserving*. Random constraint
//! systems — with cycles, constructors, and projections — are solved under
//! all four configurations, and every observable query result must agree.

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{ConsId, SetExpr, SolverConfig, System, VarId, Variance};
use rasc_devtools::{forall, prop_assert_eq, Config, Rng};

const N_VARS: usize = 8;

/// A random constraint in a small system: variable edges (possibly cyclic),
/// constructor sources, constructor sinks, and projections.
#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

/// Weighted choice mirroring the original distribution 5:2:2:2:1.
fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn arb_cons(rng: &mut Rng, max: usize) -> Vec<RandCon> {
    (0..rng.gen_range(1..max)).map(|_| arb_con(rng)).collect()
}

struct Built {
    sys: System<MonoidAlgebra>,
    vars: Vec<VarId>,
    probe: ConsId,
    o: ConsId,
}

fn build(machine: &Dfa, syms: &[SymbolId], cons: &[RandCon], config: SolverConfig) -> Built {
    let mut sys = System::with_config(MonoidAlgebra::new(machine), config);
    let vars: Vec<VarId> = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    for c in cons {
        match *c {
            RandCon::Edge(a, b, s) => {
                let ann = match s {
                    Some(i) => sys.algebra_mut().word(&[syms[i as usize]]),
                    None => sys.algebra().identity(),
                };
                sys.add_ann(SetExpr::var(vars[a]), SetExpr::var(vars[b]), ann)
                    .unwrap();
            }
            RandCon::Const(v, s) => {
                let ann = match s {
                    Some(i) => sys.algebra_mut().word(&[syms[i as usize]]),
                    None => sys.algebra().identity(),
                };
                sys.add_ann(SetExpr::cons(probe, []), SetExpr::var(vars[v]), ann)
                    .unwrap();
            }
            RandCon::Wrap(a, b) => {
                sys.add(SetExpr::cons_vars(o, [vars[a]]), SetExpr::var(vars[b]))
                    .unwrap();
            }
            RandCon::Proj(a, b) => {
                sys.add(SetExpr::proj(o, 0, vars[a]), SetExpr::var(vars[b]))
                    .unwrap();
            }
            RandCon::Sink(a, b) => {
                sys.add(SetExpr::var(vars[a]), SetExpr::cons_vars(o, [vars[b]]))
                    .unwrap();
            }
        }
    }
    sys.solve();
    Built {
        sys,
        vars,
        probe,
        o,
    }
}

/// Per-variable observation: occurrence classes, top-level classes,
/// emptiness, and `o`-reachability.
type VarSignature = (Vec<String>, Vec<String>, bool, bool);

/// The observable signature of a solved system: per variable, the sorted
/// probe occurrence annotations (as rendered strings, stable across
/// algebra instances), plus emptiness and the probe's top-level classes.
fn signature(b: &mut Built) -> Vec<VarSignature> {
    let vars = b.vars.clone();
    vars.iter()
        .map(|&v| {
            let mut occ: Vec<String> = b
                .sys
                .occurrence_annotations(v, b.probe)
                .into_iter()
                .map(|a| b.sys.algebra().describe(a))
                .collect();
            occ.sort();
            let mut top: Vec<String> = b
                .sys
                .lower_bound_annotations(v, b.probe)
                .into_iter()
                .map(|a| b.sys.algebra().describe(a))
                .collect();
            top.sort();
            let nonempty = b.sys.nonempty(v);
            let o_reaches = b.sys.occurs_accepting(v, b.o);
            (occ, top, nonempty, o_reaches)
        })
        .collect()
}

fn machine() -> (Alphabet, Dfa) {
    // L = words with an odd number of `a` and ending in `b` — small but
    // nontrivial (4-state minimal machine).
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

#[test]
fn optimizations_preserve_all_query_results() {
    forall(
        "optimizations_preserve_all_query_results",
        Config::cases(96),
        |rng| arb_cons(rng, 28),
        |cons| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let configs = [
                SolverConfig {
                    cycle_elimination: true,
                    projection_merging: true,
                    ..SolverConfig::default()
                },
                SolverConfig {
                    cycle_elimination: true,
                    projection_merging: false,
                    ..SolverConfig::default()
                },
                SolverConfig {
                    cycle_elimination: false,
                    projection_merging: true,
                    ..SolverConfig::default()
                },
                SolverConfig {
                    cycle_elimination: false,
                    projection_merging: false,
                    ..SolverConfig::default()
                },
            ];
            let mut reference: Option<Vec<VarSignature>> = None;
            for config in configs {
                let mut built = build(&dfa, &syms, cons, config);
                let sig = signature(&mut built);
                match &reference {
                    None => reference = Some(sig),
                    Some(r) => prop_assert_eq!(r, &sig, "config {config:?} diverged"),
                }
            }
            Ok(())
        },
    );
}

#[test]
fn solve_is_idempotent_and_monotone() {
    forall(
        "solve_is_idempotent_and_monotone",
        Config::cases(96),
        |rng| arb_cons(rng, 20),
        |cons| {
            // Adding the same constraints twice and re-solving must not change
            // any observable result (the solver is a closure operator).
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let mut once = build(&dfa, &syms, cons, SolverConfig::default());
            let sig_once = signature(&mut once);
            let doubled: Vec<RandCon> = cons.iter().cloned().chain(cons.iter().cloned()).collect();
            let mut twice = build(&dfa, &syms, &doubled, SolverConfig::default());
            let sig_twice = signature(&mut twice);
            prop_assert_eq!(sig_once, sig_twice);
            Ok(())
        },
    );
}
