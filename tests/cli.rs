//! End-to-end tests of the `rasc` command-line interface against the
//! bundled sample specifications and programs.

use std::process::Command;

fn rasc(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn check_finds_the_vulnerability() {
    let (ok, text) = rasc(&[
        "check",
        "--spec",
        "assets/specs/privilege.spec",
        "--program",
        "assets/programs/vulnerable.mimp",
        "--trace",
    ]);
    assert!(!ok, "violations exit nonzero");
    assert!(text.contains("VIOLATION"), "{text}");
    assert!(text.contains("witness:"), "{text}");
    assert!(text.contains("execl"), "{text}");
}

#[test]
fn check_passes_the_safe_program() {
    let (ok, text) = rasc(&[
        "check",
        "--spec",
        "assets/specs/privilege.spec",
        "--program",
        "assets/programs/safe.mimp",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("ok: property holds"), "{text}");
}

#[test]
fn check_engines_agree() {
    for engine in ["constraints", "pushdown"] {
        let (ok, _) = rasc(&[
            "check",
            "--spec",
            "assets/specs/privilege.spec",
            "--program",
            "assets/programs/vulnerable.mimp",
            "--engine",
            engine,
        ]);
        assert!(!ok, "engine {engine} must find the violation");
    }
}

#[test]
fn flow_answers_the_figure_11_queries() {
    let (ok, text) = rasc(&[
        "flow",
        "--program",
        "assets/programs/fig11.mlam",
        "--from",
        "B",
        "--to",
        "V",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("B flows to V (matched): true"), "{text}");
    let (ok, text) = rasc(&[
        "flow",
        "--program",
        "assets/programs/fig11.mlam",
        "--from",
        "A",
        "--to",
        "V",
        "--dual",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("A flows to V (matched): false"), "{text}");
}

#[test]
fn points_to_alias_queries() {
    let (ok, text) = rasc(&[
        "points-to",
        "--program",
        "assets/programs/section_7_5.mptr",
        "--alias",
        "foo::x",
        "foo::y",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("may-alias(foo::x, foo::y) = true"), "{text}");
    let (ok, text) = rasc(&[
        "points-to",
        "--program",
        "assets/programs/section_7_5.mptr",
        "--alias",
        "foo::x",
        "foo::y",
        "--stack-aware",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("may-alias(foo::x, foo::y) = false"), "{text}");
}

#[test]
fn dataflow_at_labels() {
    let base = [
        "dataflow",
        "--program",
        "assets/programs/dataflow.mimp",
        "--fact",
        "x=def_x/kill_x",
    ];
    let (ok, text) = rasc(&[&base[..], &["--at", "p"]].concat());
    assert!(ok, "{text}");
    assert!(text.contains("at `p`: {x}"), "{text}");
    let (ok, text) = rasc(&[&base[..], &["--at", "q"]].concat());
    assert!(ok, "{text}");
    assert!(text.contains("at `q`: {}"), "{text}");
}

#[test]
fn spec_reports_machine_shape() {
    let (ok, text) = rasc(&["spec", "--spec", "assets/specs/privilege.spec", "--monoid"]);
    assert!(ok, "{text}");
    assert!(text.contains("states: 3"), "{text}");
    assert!(text.contains("|F_M^≡| = "), "{text}");
    let (ok, text) = rasc(&["spec", "--spec", "assets/specs/privilege.spec", "--dot"]);
    assert!(ok);
    assert!(text.contains("digraph"), "{text}");
}

#[test]
fn cfg_stats_and_dot() {
    let (ok, text) = rasc(&["cfg", "--program", "assets/programs/vulnerable.mimp"]);
    assert!(ok, "{text}");
    assert!(text.contains("program points:"), "{text}");
    let (ok, text) = rasc(&[
        "cfg",
        "--program",
        "assets/programs/vulnerable.mimp",
        "--dot",
    ]);
    assert!(ok);
    assert!(text.contains("digraph cfg"), "{text}");
}

#[test]
fn parametric_check_via_cli() {
    // A leaky program against the parametric file-state property.
    let dir = std::env::temp_dir().join("rasc_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("leak.mimp");
    std::fs::write(
        &prog,
        "fn main() { event open(fd1); event open(fd2); event close(fd1); }",
    )
    .unwrap();
    let (ok, text) = rasc(&[
        "check",
        "--spec",
        "assets/specs/file_state.spec",
        "--program",
        prog.to_str().unwrap(),
    ]);
    assert!(!ok, "fd2 leaks: {text}");
    assert!(text.contains("VIOLATION"), "{text}");
}

#[test]
fn bad_usage_is_reported() {
    let (ok, text) = rasc(&["check", "--spec", "assets/specs/privilege.spec"]);
    assert!(!ok);
    assert!(text.contains("missing required option --program"), "{text}");
    let (ok, text) = rasc(&["frobnicate"]);
    assert!(!ok);
    assert!(text.contains("unknown command"), "{text}");
    let (ok, text) = rasc(&["help"]);
    assert!(ok);
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn batch_runs_an_incremental_session() {
    let (ok, text) = rasc(&[
        "batch",
        "--spec",
        "assets/specs/privilege.spec",
        "--input",
        "assets/batch/session.jsonl",
    ]);
    assert!(ok, "{text}");
    let lines: Vec<&str> = text.lines().collect();
    // One response per non-comment line of the script.
    assert_eq!(lines.len(), 21, "{text}");
    assert!(
        lines[5].contains(r#""result":true"#),
        "pc reaches Exec accepting: {text}"
    );
    assert!(
        lines[8].contains(r#""result":true"#),
        "the Error state absorbs, so the mid-epoch extension still accepts: {text}"
    );
    assert!(lines[10].contains(r#""ok":"pop""#), "{text}");
    assert!(
        lines[11].contains(r#""result":true"#),
        "pre-epoch result restored: {text}"
    );
    assert!(lines[12].contains(r#""ok":"stats""#), "{text}");
    // Limits / error-recovery tail of the script.
    assert!(
        lines[13].contains(r#""ok":"limits""#) && lines[13].contains(r#""max_steps":1"#),
        "{text}"
    );
    assert!(
        lines[14].contains(r#""code":"budget_exhausted""#)
            && lines[14].contains(r#""reason":"steps""#)
            && lines[14].contains(r#""rolled_back":true"#),
        "budgeted add must fail transactionally: {text}"
    );
    assert!(
        lines[15].contains(r#""ok":"limits""#) && lines[15].contains(r#""max_steps":null"#),
        "bare limits clears every cap: {text}"
    );
    assert!(
        lines[16].contains(r#""ok":"add""#),
        "unbudgeted retry succeeds: {text}"
    );
    assert!(
        lines[17].contains(r#""result":true"#),
        "the retried edge is live: {text}"
    );
    assert!(
        lines[18].contains(r#""ok":"explain""#)
            && lines[18].contains(r#""holds":true"#)
            && lines[18].contains(r#""rule":"constraint""#),
        "explain cites the surface constraints behind the bound: {text}"
    );
    assert!(
        lines[19].contains(r#""code":"unknown_command""#),
        "errors stay in-band: {text}"
    );
    assert!(
        lines[20].contains(r#""ok":"stats""#) && lines[20].contains(r#""fuel_spent""#),
        "{text}"
    );
}

#[test]
fn batch_trace_writes_a_valid_chrome_trace() {
    let dir = std::env::temp_dir().join("rasc_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("session_trace.json");
    let (ok, text) = rasc(&[
        "batch",
        "--spec",
        "assets/specs/privilege.spec",
        "--input",
        "assets/batch/session.jsonl",
        "--trace",
        trace_path.to_str().unwrap(),
        "--profile",
    ]);
    assert!(ok, "{text}");
    // --trace reports what it wrote; --profile prints the event summary.
    assert!(text.contains("trace events"), "{text}");
    assert!(text.contains("counters:"), "{text}");
    assert!(text.contains("solver.facts"), "{text}");
    // The file is a schema-valid Chrome trace with real solver activity.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let summary = rasc_devtools::validate_chrome_trace(&trace).expect("schema-valid trace");
    assert!(summary.events > 0);
    assert_eq!(summary.begins, summary.ends, "spans balance");
    assert!(summary.counters > 0);
}

#[test]
fn batch_flushes_each_response_while_stdin_stays_open() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;
    use std::sync::mpsc;
    use std::time::Duration;

    let mut child = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args(["batch", "--spec", "assets/specs/privilege.spec"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().unwrap();
    let stdout = child.stdout.take().unwrap();

    // A driver holding its pipe open must see each response as soon as
    // it sends the command — not when the stream ends.
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        while let Some(Ok(line)) = lines.next() {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    for (cmd, expect) in [
        (r#"{"cmd":"declare","cons":"pc"}"#, r#""ok":"declare""#),
        (r#"{"cmd":"add","lhs":"pc","rhs":"Main"}"#, r#""ok":"add""#),
    ] {
        writeln!(stdin, "{cmd}").unwrap();
        stdin.flush().unwrap();
        let response = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("response must arrive while stdin is still open");
        assert!(response.contains(expect), "{response}");
    }
    drop(stdin);
    reader.join().unwrap();
    assert!(child.wait().unwrap().success());
}

#[test]
fn batch_reports_protocol_errors_in_band() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args(["batch", "--spec", "assets/specs/privilege.spec"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"cmd\":\"pop\"}\n{\"cmd\":\"declare\",\"cons\":\"c\"}\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(out.status.success(), "{text}");
    assert!(text.lines().next().unwrap().contains("error"), "{text}");
    assert!(text.lines().nth(1).unwrap().contains("declare"), "{text}");
}
