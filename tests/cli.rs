//! End-to-end tests of the `rasc` command-line interface against the
//! bundled sample specifications and programs.

use std::process::Command;

fn rasc(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn check_finds_the_vulnerability() {
    let (ok, text) = rasc(&[
        "check",
        "--spec",
        "assets/specs/privilege.spec",
        "--program",
        "assets/programs/vulnerable.mimp",
        "--trace",
    ]);
    assert!(!ok, "violations exit nonzero");
    assert!(text.contains("VIOLATION"), "{text}");
    assert!(text.contains("witness:"), "{text}");
    assert!(text.contains("execl"), "{text}");
}

#[test]
fn check_passes_the_safe_program() {
    let (ok, text) = rasc(&[
        "check",
        "--spec",
        "assets/specs/privilege.spec",
        "--program",
        "assets/programs/safe.mimp",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("ok: property holds"), "{text}");
}

#[test]
fn check_engines_agree() {
    for engine in ["constraints", "pushdown"] {
        let (ok, _) = rasc(&[
            "check",
            "--spec",
            "assets/specs/privilege.spec",
            "--program",
            "assets/programs/vulnerable.mimp",
            "--engine",
            engine,
        ]);
        assert!(!ok, "engine {engine} must find the violation");
    }
}

#[test]
fn flow_answers_the_figure_11_queries() {
    let (ok, text) = rasc(&[
        "flow",
        "--program",
        "assets/programs/fig11.mlam",
        "--from",
        "B",
        "--to",
        "V",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("B flows to V (matched): true"), "{text}");
    let (ok, text) = rasc(&[
        "flow",
        "--program",
        "assets/programs/fig11.mlam",
        "--from",
        "A",
        "--to",
        "V",
        "--dual",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("A flows to V (matched): false"), "{text}");
}

#[test]
fn points_to_alias_queries() {
    let (ok, text) = rasc(&[
        "points-to",
        "--program",
        "assets/programs/section_7_5.mptr",
        "--alias",
        "foo::x",
        "foo::y",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("may-alias(foo::x, foo::y) = true"), "{text}");
    let (ok, text) = rasc(&[
        "points-to",
        "--program",
        "assets/programs/section_7_5.mptr",
        "--alias",
        "foo::x",
        "foo::y",
        "--stack-aware",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("may-alias(foo::x, foo::y) = false"), "{text}");
}

#[test]
fn dataflow_at_labels() {
    let base = [
        "dataflow",
        "--program",
        "assets/programs/dataflow.mimp",
        "--fact",
        "x=def_x/kill_x",
    ];
    let (ok, text) = rasc(&[&base[..], &["--at", "p"]].concat());
    assert!(ok, "{text}");
    assert!(text.contains("at `p`: {x}"), "{text}");
    let (ok, text) = rasc(&[&base[..], &["--at", "q"]].concat());
    assert!(ok, "{text}");
    assert!(text.contains("at `q`: {}"), "{text}");
}

#[test]
fn spec_reports_machine_shape() {
    let (ok, text) = rasc(&["spec", "--spec", "assets/specs/privilege.spec", "--monoid"]);
    assert!(ok, "{text}");
    assert!(text.contains("states: 3"), "{text}");
    assert!(text.contains("|F_M^≡| = "), "{text}");
    let (ok, text) = rasc(&["spec", "--spec", "assets/specs/privilege.spec", "--dot"]);
    assert!(ok);
    assert!(text.contains("digraph"), "{text}");
}

#[test]
fn cfg_stats_and_dot() {
    let (ok, text) = rasc(&["cfg", "--program", "assets/programs/vulnerable.mimp"]);
    assert!(ok, "{text}");
    assert!(text.contains("program points:"), "{text}");
    let (ok, text) = rasc(&[
        "cfg",
        "--program",
        "assets/programs/vulnerable.mimp",
        "--dot",
    ]);
    assert!(ok);
    assert!(text.contains("digraph cfg"), "{text}");
}

#[test]
fn parametric_check_via_cli() {
    // A leaky program against the parametric file-state property.
    let dir = std::env::temp_dir().join("rasc_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("leak.mimp");
    std::fs::write(
        &prog,
        "fn main() { event open(fd1); event open(fd2); event close(fd1); }",
    )
    .unwrap();
    let (ok, text) = rasc(&[
        "check",
        "--spec",
        "assets/specs/file_state.spec",
        "--program",
        prog.to_str().unwrap(),
    ]);
    assert!(!ok, "fd2 leaks: {text}");
    assert!(text.contains("VIOLATION"), "{text}");
}

#[test]
fn bad_usage_is_reported() {
    let (ok, text) = rasc(&["check", "--spec", "assets/specs/privilege.spec"]);
    assert!(!ok);
    assert!(text.contains("missing required option --program"), "{text}");
    let (ok, text) = rasc(&["frobnicate"]);
    assert!(!ok);
    assert!(text.contains("unknown command"), "{text}");
    let (ok, text) = rasc(&["help"]);
    assert!(ok);
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn batch_runs_an_incremental_session() {
    let (ok, text) = rasc(&[
        "batch",
        "--spec",
        "assets/specs/privilege.spec",
        "--input",
        "assets/batch/session.jsonl",
    ]);
    assert!(ok, "{text}");
    let lines: Vec<&str> = text.lines().collect();
    // One response per non-comment line of the script.
    assert_eq!(lines.len(), 25, "{text}");
    assert!(
        lines[5].contains(r#""result":true"#),
        "pc reaches Exec accepting: {text}"
    );
    assert!(
        lines[8].contains(r#""result":true"#),
        "the Error state absorbs, so the mid-epoch extension still accepts: {text}"
    );
    assert!(lines[10].contains(r#""ok":"pop""#), "{text}");
    assert!(
        lines[11].contains(r#""result":true"#),
        "pre-epoch result restored: {text}"
    );
    assert!(lines[12].contains(r#""ok":"stats""#), "{text}");
    // Limits / error-recovery tail of the script.
    assert!(
        lines[13].contains(r#""ok":"limits""#) && lines[13].contains(r#""max_steps":1"#),
        "{text}"
    );
    assert!(
        lines[14].contains(r#""code":"budget_exhausted""#)
            && lines[14].contains(r#""reason":"steps""#)
            && lines[14].contains(r#""rolled_back":true"#),
        "budgeted add must fail transactionally: {text}"
    );
    assert!(
        lines[15].contains(r#""ok":"limits""#) && lines[15].contains(r#""max_steps":null"#),
        "bare limits clears every cap: {text}"
    );
    assert!(
        lines[16].contains(r#""ok":"add""#),
        "unbudgeted retry succeeds: {text}"
    );
    assert!(
        lines[17].contains(r#""result":true"#),
        "the retried edge is live: {text}"
    );
    assert!(
        lines[18].contains(r#""ok":"explain""#)
            && lines[18].contains(r#""holds":true"#)
            && lines[18].contains(r#""rule":"constraint""#),
        "explain cites the surface constraints behind the bound: {text}"
    );
    assert!(
        lines[19].contains(r#""code":"unknown_command""#),
        "errors stay in-band: {text}"
    );
    assert!(
        lines[20].contains(r#""ok":"stats""#) && lines[20].contains(r#""fuel_spent""#),
        "{text}"
    );
    // Persistence tail: snapshot, restore, and the round-tripped query.
    assert!(
        lines[21].contains(r#""ok":"snapshot""#) && lines[21].contains(r#""bytes""#),
        "{text}"
    );
    assert!(
        lines[22].contains(r#""ok":"restore""#) && lines[22].contains(r#""consistent":true"#),
        "{text}"
    );
    assert!(
        lines[23].contains(r#""result":true"#),
        "the restored solved form answers without replay: {text}"
    );
    // Telemetry tail: the request-scoped stats read.
    assert!(
        lines[24].contains(r#""ok":"stats""#)
            && lines[24].contains(r#""scope":"request""#)
            && lines[24].contains(r#""fuel_spent""#),
        "{text}"
    );
}

#[test]
fn batch_trace_writes_a_valid_chrome_trace() {
    let dir = std::env::temp_dir().join("rasc_cli_trace_test");
    // The session script snapshots to `target/session.snap` relative to
    // its working directory; an isolated cwd keeps this run from racing
    // the plain batch test over the same file.
    std::fs::create_dir_all(dir.join("target")).unwrap();
    let trace_path = dir.join("session_trace.json");
    let manifest = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args([
            "batch",
            "--spec",
            &format!("{manifest}/assets/specs/privilege.spec"),
            "--input",
            &format!("{manifest}/assets/batch/session.jsonl"),
            "--trace",
            trace_path.to_str().unwrap(),
            "--profile",
        ])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    let ok = out.status.success();
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ok, "{text}");
    // --trace reports what it wrote; --profile prints the event summary.
    assert!(text.contains("trace events"), "{text}");
    assert!(text.contains("counters:"), "{text}");
    assert!(text.contains("solver.facts"), "{text}");
    // The file is a schema-valid Chrome trace with real solver activity.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let summary = rasc_devtools::validate_chrome_trace(&trace).expect("schema-valid trace");
    assert!(summary.events > 0);
    assert_eq!(summary.begins, summary.ends, "spans balance");
    assert!(summary.counters > 0);
}

#[test]
fn batch_flushes_each_response_while_stdin_stays_open() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;
    use std::sync::mpsc;
    use std::time::Duration;

    let mut child = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args(["batch", "--spec", "assets/specs/privilege.spec"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().unwrap();
    let stdout = child.stdout.take().unwrap();

    // A driver holding its pipe open must see each response as soon as
    // it sends the command — not when the stream ends.
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        while let Some(Ok(line)) = lines.next() {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    for (cmd, expect) in [
        (r#"{"cmd":"declare","cons":"pc"}"#, r#""ok":"declare""#),
        (r#"{"cmd":"add","lhs":"pc","rhs":"Main"}"#, r#""ok":"add""#),
    ] {
        writeln!(stdin, "{cmd}").unwrap();
        stdin.flush().unwrap();
        let response = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("response must arrive while stdin is still open");
        assert!(response.contains(expect), "{response}");
    }
    drop(stdin);
    reader.join().unwrap();
    assert!(child.wait().unwrap().success());
}

#[test]
fn snapshot_and_restore_subcommands_round_trip() {
    let dir = std::env::temp_dir().join("rasc_cli_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let build = dir.join("build.jsonl");
    std::fs::write(
        &build,
        concat!(
            "{\"cmd\":\"declare\",\"cons\":\"pc\"}\n",
            "{\"cmd\":\"add\",\"lhs\":\"pc\",\"rhs\":\"Main\",\"ann\":[\"seteuid_zero\",\"execl\"]}\n",
        ),
    )
    .unwrap();
    let snap = dir.join("cli.snap");

    let (ok, text) = rasc(&[
        "snapshot",
        "--spec",
        "assets/specs/privilege.spec",
        "--input",
        build.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("-byte snapshot to"), "{text}");
    assert!(snap.exists());

    // `rasc restore` answers queries from the solved form — no replay.
    let query = dir.join("query.jsonl");
    std::fs::write(
        &query,
        "{\"cmd\":\"query\",\"kind\":\"occurs\",\"var\":\"Main\",\"cons\":\"pc\"}\n",
    )
    .unwrap();
    let (ok, text) = rasc(&[
        "restore",
        "--spec",
        "assets/specs/privilege.spec",
        "--snapshot",
        snap.to_str().unwrap(),
        "--input",
        query.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("restored 1 constraints"), "{text}");
    assert!(text.contains(r#""result":true"#), "{text}");

    // A torn snapshot is refused with the typed corruption error, not a
    // panic or a silent mis-restore.
    let torn = dir.join("torn.snap");
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
    let (ok, text) = rasc(&[
        "restore",
        "--spec",
        "assets/specs/privilege.spec",
        "--snapshot",
        torn.to_str().unwrap(),
        "--input",
        query.to_str().unwrap(),
    ]);
    assert!(!ok, "a torn snapshot must fail the restore: {text}");
    assert!(text.contains("corrupt"), "{text}");
}

/// The batch protocol's error codes are a stable API surface — drivers
/// and the server's clients match on them. This pins every code the
/// README documents, including the snapshot taxonomy.
#[test]
fn batch_error_codes_are_stable() {
    use std::io::Write;
    use std::process::Stdio;

    let dir = std::env::temp_dir().join("rasc_cli_codes_test");
    std::fs::create_dir_all(&dir).unwrap();
    let torn = dir.join("torn.snap");
    std::fs::write(&torn, b"RASCSNAP\x01not a real snapshot").unwrap();
    let missing = dir.join("does_not_exist.snap");
    let _ = std::fs::remove_file(&missing);

    let script: Vec<(String, &str)> = vec![
        ("not json at all".into(), "malformed_json"),
        (r#"{"cmd":"frobnicate"}"#.into(), "unknown_command"),
        (r#"{"cmd":"add","lhs":"pc"}"#.into(), "bad_request"),
        (r#"{"cmd":"declare","cons":"pc"}"#.into(), "ok"),
        (
            r#"{"cmd":"add","lhs":"pc","rhs":"V","ann":["no_such_symbol"]}"#.into(),
            "unknown_symbol",
        ),
        (
            r#"{"cmd":"query","kind":"occurs","var":"Missing","cons":"pc"}"#.into(),
            "unknown_variable",
        ),
        (r#"{"cmd":"add","lhs":"pc","rhs":"Main"}"#.into(), "ok"),
        (
            r#"{"cmd":"query","kind":"occurs","var":"Main","cons":"zork"}"#.into(),
            "unknown_constructor",
        ),
        (r#"{"cmd":"pop"}"#.into(), "no_open_epoch"),
        (r#"{"cmd":"stats","scope":"request"}"#.into(), "ok"),
        (r#"{"cmd":"stats","scope":"bogus"}"#.into(), "bad_request"),
        (r#"{"cmd":"stats","scope":7}"#.into(), "bad_request"),
        (r#"{"cmd":"snapshot"}"#.into(), "bad_request"),
        (
            format!(r#"{{"cmd":"restore","path":"{}"}}"#, missing.display()),
            "io",
        ),
        (
            format!(r#"{{"cmd":"restore","path":"{}"}}"#, torn.display()),
            "snapshot_corrupt",
        ),
        (r#"{"cmd":"limits","max_steps":1}"#.into(), "ok"),
        (
            r#"{"cmd":"add","lhs":"Main","rhs":"Tail","ann":["execl"]}"#.into(),
            "budget_exhausted",
        ),
    ];

    let mut child = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args(["batch", "--spec", "assets/specs/privilege.spec"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    {
        let mut stdin = child.stdin.take().unwrap();
        for (line, _) in &script {
            writeln!(stdin, "{line}").unwrap();
        }
    }
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(out.status.success(), "{text}");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), script.len(), "{text}");
    for (i, (line, want)) in script.iter().enumerate() {
        if *want == "ok" {
            assert!(lines[i].contains(r#""ok":"#), "{line} -> {}", lines[i]);
        } else {
            assert!(
                lines[i].contains(&format!(r#""code":"{want}""#)),
                "stable code `{want}` for `{line}` -> {}",
                lines[i]
            );
        }
    }
}

#[test]
fn batch_reports_protocol_errors_in_band() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_rasc"))
        .args(["batch", "--spec", "assets/specs/privilege.spec"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"cmd\":\"pop\"}\n{\"cmd\":\"declare\",\"cons\":\"c\"}\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(out.status.success(), "{text}");
    assert!(text.lines().next().unwrap().contains("error"), "{text}");
    assert!(text.lines().nth(1).unwrap().contains("declare"), "{text}");
}
