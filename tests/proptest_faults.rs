//! Fault-injection property tests for the resource governor:
//!
//! * **Resume equals uninterrupted** — interrupting a bounded solve at an
//!   arbitrary worklist step (via any [`FaultPlan`] mechanism: fuel,
//!   deadline, cancellation) and then resuming must converge to exactly
//!   the observable fixpoint of an uninterrupted solve.
//! * **Rollback restores every observable query** — interrupting the
//!   solve of an epoch's constraints and popping the epoch must restore
//!   every observable query result and the solver statistics, and the
//!   session must remain fully usable afterwards.
//!
//! Observables are compared through *semantic* signatures (sorted
//! annotation renderings, emptiness, acceptance, consistency), never
//! through hash-map iteration order, so two independently built systems
//! can be compared.

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{Budget, ConsId, Outcome, SetExpr, SolverConfig, System, VarId, Variance};
use rasc::Session;
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, FaultPlan, Rng};

const N_VARS: usize = 6;

#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn arb_cons(rng: &mut Rng, lo: usize, hi: usize) -> Vec<RandCon> {
    (0..rng.gen_range(lo..hi)).map(|_| arb_con(rng)).collect()
}

fn machine() -> (Alphabet, Dfa) {
    // Odd number of `a`, ending in `b` — 4-state minimal machine.
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

struct Shape {
    vars: Vec<VarId>,
    probe: ConsId,
    o: ConsId,
}

fn declare(sys: &mut System<MonoidAlgebra>) -> Shape {
    let vars = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    Shape { vars, probe, o }
}

/// Adds one random constraint directly to a system (no solve).
fn apply(sys: &mut System<MonoidAlgebra>, shape: &Shape, syms: &[SymbolId], c: &RandCon) {
    let ann = |sys: &mut System<MonoidAlgebra>, s: &Option<u8>| match s {
        Some(i) => sys.algebra_mut().word(&[syms[*i as usize]]),
        None => sys.algebra().identity(),
    };
    match *c {
        RandCon::Edge(a, b, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(SetExpr::var(shape.vars[a]), SetExpr::var(shape.vars[b]), w)
                .unwrap();
        }
        RandCon::Const(v, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(
                SetExpr::cons(shape.probe, []),
                SetExpr::var(shape.vars[v]),
                w,
            )
            .unwrap();
        }
        RandCon::Wrap(a, b) => {
            sys.add(
                SetExpr::cons_vars(shape.o, [shape.vars[a]]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Proj(a, b) => {
            sys.add(
                SetExpr::proj(shape.o, 0, shape.vars[a]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Sink(a, b) => {
            sys.add(
                SetExpr::var(shape.vars[a]),
                SetExpr::cons_vars(shape.o, [shape.vars[b]]),
            )
            .unwrap();
        }
    }
}

/// Per-variable semantic observation: sorted probe occurrence annotations
/// (rendered), emptiness, `o`-acceptance, partially matched occurrences —
/// plus global consistency.
type Signature = (Vec<(Vec<String>, bool, bool, Vec<String>)>, bool);

fn system_signature(sys: &mut System<MonoidAlgebra>, shape: &Shape) -> Signature {
    let per_var = shape
        .vars
        .iter()
        .map(|&v| {
            let mut occ: Vec<String> = sys
                .occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| sys.algebra().describe(a))
                .collect();
            occ.sort();
            let nonempty = sys.nonempty(v);
            let o_reaches = sys.occurs_accepting(v, shape.o);
            let mut pn: Vec<String> = sys
                .pn_occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| sys.algebra().describe(a))
                .collect();
            pn.sort();
            (occ, nonempty, o_reaches, pn)
        })
        .collect();
    (per_var, sys.is_consistent())
}

fn session_signature(s: &mut Session<MonoidAlgebra>, shape: &Shape) -> Signature {
    let per_var = shape
        .vars
        .iter()
        .map(|&v| {
            let mut occ: Vec<String> = s
                .occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            occ.sort();
            let nonempty = s.nonempty(v);
            let o_reaches = s.occurs_accepting(v, shape.o);
            let mut pn: Vec<String> = s
                .pn_occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            pn.sort();
            (occ, nonempty, o_reaches, pn)
        })
        .collect();
    (per_var, s.is_consistent())
}

#[test]
fn resume_equals_uninterrupted() {
    forall(
        "resume_equals_uninterrupted",
        Config::cases(96),
        |rng| {
            let cons = arb_cons(rng, 1, 24);
            let plans: Vec<FaultPlan> = (0..rng.gen_range(1..5))
                .map(|_| FaultPlan::arbitrary(rng, 40))
                .collect();
            (cons, plans)
        },
        |(cons, plans)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();

            // Uninterrupted reference fixpoint.
            let mut reference =
                System::with_config(MonoidAlgebra::new(&dfa), SolverConfig::default());
            let shape_r = declare(&mut reference);
            for c in cons {
                apply(&mut reference, &shape_r, &syms, c);
            }
            reference.solve();
            let want = system_signature(&mut reference, &shape_r);

            // Same constraints, but every solve attempt is sabotaged by a
            // fault plan before an unlimited resume finishes the job.
            let mut sys = System::with_config(MonoidAlgebra::new(&dfa), SolverConfig::default());
            let shape = declare(&mut sys);
            for c in cons {
                apply(&mut sys, &shape, &syms, c);
            }
            for plan in plans {
                match sys.solve_bounded(&plan.budget()) {
                    Outcome::Complete => break,
                    Outcome::Interrupted(_) => {
                        // The interrupting fact stays queued for resume.
                        prop_assert!(
                            sys.pending_facts() > 0,
                            "interrupt left no pending work ({plan:?})"
                        );
                    }
                }
            }
            prop_assert!(sys.solve_bounded(&Budget::unlimited()).is_complete());
            prop_assert_eq!(sys.pending_facts(), 0);

            let got = system_signature(&mut sys, &shape);
            prop_assert_eq!(&got, &want, "resumed fixpoint diverged from uninterrupted");
            Ok(())
        },
    );
}

#[test]
fn rollback_after_interrupt_restores_all_observables() {
    forall(
        "rollback_after_interrupt_restores_all_observables",
        Config::cases(96),
        |rng| {
            (
                arb_cons(rng, 0, 12),
                arb_cons(rng, 1, 8),
                FaultPlan::arbitrary(rng, 20),
            )
        },
        |(base, extra, plan)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let mut sess = Session::new(MonoidAlgebra::new(&dfa));
            let shape = declare(sess.system_mut());
            for c in base {
                apply(sess.system_mut(), &shape, &syms, c);
                sess.system_mut().solve();
            }
            let before = session_signature(&mut sess, &shape);
            // The algebra's hash-cons table is a monotone memo and is
            // deliberately not rolled back.
            let mut before_stats = sess.stats();
            before_stats.annotations = 0;

            sess.push_epoch();
            for c in extra {
                apply(sess.system_mut(), &shape, &syms, c);
            }
            let outcome = sess.system_mut().solve_bounded(&plan.budget());
            // Whether or not the fault tripped, abandoning the epoch must
            // restore the pre-epoch state (pending facts included).
            prop_assert!(sess.pop_epoch());
            prop_assert_eq!(sess.system().pending_facts(), 0);

            let after = session_signature(&mut sess, &shape);
            prop_assert_eq!(
                &after,
                &before,
                "rollback after {outcome:?} changed an observable"
            );
            let mut after_stats = sess.stats();
            after_stats.annotations = 0;
            prop_assert_eq!(&after_stats, &before_stats, "rollback changed stats");

            // The session stays usable: re-adding the epoch's constraints
            // now reaches the same fixpoint as a fresh batch solve.
            for c in extra {
                apply(sess.system_mut(), &shape, &syms, c);
            }
            sess.system_mut().solve();
            let resumed = session_signature(&mut sess, &shape);

            let mut batch = System::with_config(MonoidAlgebra::new(&dfa), SolverConfig::default());
            let shape_b = declare(&mut batch);
            for c in base.iter().chain(extra) {
                apply(&mut batch, &shape_b, &syms, c);
            }
            batch.solve();
            let want = system_signature(&mut batch, &shape_b);
            prop_assert_eq!(&resumed, &want, "post-rollback session diverged");
            Ok(())
        },
    );
}
