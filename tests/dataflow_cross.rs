//! Randomized validation of the dataflow engines: the context-sensitive
//! constraint engine must refine (⊆) the context-insensitive iterative
//! baseline everywhere, and agree exactly on call-free programs.

use rasc::cfgir::{Cfg, NodeId, Program};
use rasc::dataflow::{ConstraintDataflow, GenKillSpec, IterativeDataflow};
use rasc_bench::workload::{generate, WorkloadConfig};

fn spec_with_events() -> (GenKillSpec, Vec<String>) {
    let mut spec = GenKillSpec::new();
    let mut names = Vec::new();
    for i in 0..6 {
        let f = spec.fact(&format!("x{i}"));
        spec.event(&format!("def_x{i}"), &[f], &[]);
        spec.event(&format!("kill_x{i}"), &[], &[f]);
        names.push(format!("def_x{i}"));
        names.push(format!("kill_x{i}"));
    }
    (spec, names)
}

#[test]
fn constraint_dataflow_refines_iterative_on_random_programs() {
    let (spec, names) = spec_with_events();
    for seed in 0..20u64 {
        let wl = WorkloadConfig::sized(150, names.clone(), seed);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).unwrap();
        let mut cs = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        cs.solve();
        let mut ci = IterativeDataflow::new(&cfg, &spec, "main").unwrap();
        ci.solve(0);
        for n in 0..cfg.num_nodes() {
            let node = NodeId::from_index(n);
            let a = cs.facts_at(node);
            let b = ci.facts_at(node);
            assert_eq!(
                a & !b,
                0,
                "seed {seed}: constraint result must be ⊆ iterative at node {n}\n{program}"
            );
        }
    }
}

#[test]
fn engines_agree_exactly_on_call_free_programs() {
    let (spec, names) = spec_with_events();
    for seed in 50..70u64 {
        let mut wl = WorkloadConfig::sized(120, names.clone(), seed);
        wl.call_density = 0.0;
        wl.functions = 1;
        let program = generate(&wl);
        let cfg = Cfg::build(&program).unwrap();
        let mut cs = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
        cs.solve();
        let mut ci = IterativeDataflow::new(&cfg, &spec, "main").unwrap();
        ci.solve(0);
        for n in 0..cfg.num_nodes() {
            let node = NodeId::from_index(n);
            assert_eq!(
                cs.facts_at(node),
                ci.facts_at(node),
                "seed {seed}: call-free programs must agree exactly at node {n}\n{program}"
            );
        }
    }
}

#[test]
fn known_precision_gap_is_witnessed() {
    // The canonical context-sensitivity example must show a strict gap.
    let src = "fn f() { skip; }
        fn main() { event def_x0; f(); event kill_x0; f(); q: skip; }";
    let (spec, _) = spec_with_events();
    let program = Program::parse(src).unwrap();
    let cfg = Cfg::build(&program).unwrap();
    let mut cs = ConstraintDataflow::new(&cfg, &spec, "main").unwrap();
    cs.solve();
    let mut ci = IterativeDataflow::new(&cfg, &spec, "main").unwrap();
    ci.solve(0);
    let q = cfg.label_node("q").unwrap();
    assert_eq!(cs.facts_at(q) & 1, 0);
    assert_eq!(ci.facts_at(q) & 1, 1);
}
