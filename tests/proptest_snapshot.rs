//! Fault-injection property tests for the snapshot subsystem:
//!
//! * **Restore equals replay** — serializing a solved session and
//!   restoring it must reproduce every observable query (occurrence
//!   annotations, emptiness, acceptance, partial matches, consistency),
//!   and the restored session must stay usable: adding more constraints
//!   converges to the same fixpoint as an uninterrupted session.
//! * **Crash recovery is last-durable-or-typed-error** — for every IO
//!   fault the atomic write protocol can suffer (short write, ENOSPC,
//!   crash before/after rename, torn file, bit rot), recovery either
//!   yields exactly the last durable snapshot's observables or a clean
//!   typed [`SnapshotError`]. No panics, no silently divergent restores.
//!
//! Observables are compared through the same semantic signatures the
//! governor fault suite uses (sorted renderings, never hash order), and
//! IO faults come from the deterministic [`IoFaultPlan`] machinery in
//! `rasc_devtools`, so every failure replays bit-for-bit from a seed.

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::snapshot::{read_snapshot_file, write_atomic};
use rasc::constraints::{ConsId, SetExpr, SnapshotError, System, VarId, Variance};
use rasc::Session;
use rasc_devtools::{
    forall, prop_assert, prop_assert_eq, Config, FaultyWriter, IoFaultKind, IoFaultPlan, Rng,
};

const N_VARS: usize = 6;

#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn arb_cons(rng: &mut Rng, lo: usize, hi: usize) -> Vec<RandCon> {
    (0..rng.gen_range(lo..hi)).map(|_| arb_con(rng)).collect()
}

fn machine() -> (Alphabet, Dfa) {
    // Odd number of `a`, ending in `b` — 4-state minimal machine.
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

struct Shape {
    vars: Vec<VarId>,
    probe: ConsId,
    o: ConsId,
}

fn declare(sys: &mut System<MonoidAlgebra>) -> Shape {
    let vars = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    Shape { vars, probe, o }
}

/// Adds one random constraint directly to a system (no solve).
fn apply(sys: &mut System<MonoidAlgebra>, shape: &Shape, syms: &[SymbolId], c: &RandCon) {
    let ann = |sys: &mut System<MonoidAlgebra>, s: &Option<u8>| match s {
        Some(i) => sys.algebra_mut().word(&[syms[*i as usize]]),
        None => sys.algebra().identity(),
    };
    match *c {
        RandCon::Edge(a, b, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(SetExpr::var(shape.vars[a]), SetExpr::var(shape.vars[b]), w)
                .unwrap();
        }
        RandCon::Const(v, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(
                SetExpr::cons(shape.probe, []),
                SetExpr::var(shape.vars[v]),
                w,
            )
            .unwrap();
        }
        RandCon::Wrap(a, b) => {
            sys.add(
                SetExpr::cons_vars(shape.o, [shape.vars[a]]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Proj(a, b) => {
            sys.add(
                SetExpr::proj(shape.o, 0, shape.vars[a]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Sink(a, b) => {
            sys.add(
                SetExpr::var(shape.vars[a]),
                SetExpr::cons_vars(shape.o, [shape.vars[b]]),
            )
            .unwrap();
        }
    }
}

/// Per-variable semantic observation: sorted probe occurrence annotations
/// (rendered), emptiness, `o`-acceptance, partially matched occurrences —
/// plus global consistency.
type Signature = (Vec<(Vec<String>, bool, bool, Vec<String>)>, bool);

fn session_signature(s: &mut Session<MonoidAlgebra>, shape: &Shape) -> Signature {
    let per_var = shape
        .vars
        .iter()
        .map(|&v| {
            let mut occ: Vec<String> = s
                .occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            occ.sort();
            let nonempty = s.nonempty(v);
            let o_reaches = s.occurs_accepting(v, shape.o);
            let mut pn: Vec<String> = s
                .pn_occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            pn.sort();
            (occ, nonempty, o_reaches, pn)
        })
        .collect();
    (per_var, s.is_consistent())
}

/// Builds a solved session from a constraint list.
fn build(dfa: &Dfa, syms: &[SymbolId], cons: &[RandCon]) -> (Session<MonoidAlgebra>, Shape) {
    let mut sess = Session::new(MonoidAlgebra::new(dfa));
    let shape = declare(sess.system_mut());
    for c in cons {
        apply(sess.system_mut(), &shape, syms, c);
    }
    sess.system_mut().solve();
    (sess, shape)
}

/// Names are diagnostics only at the `System` layer, so a restored
/// session is queried through the same dense ids `declare` handed out
/// (vars `0..N_VARS`, then `probe`, then `o`) rather than re-declared.
fn restored_shape() -> Shape {
    Shape {
        vars: (0..N_VARS).map(VarId::from_index).collect(),
        probe: ConsId::from_index(0),
        o: ConsId::from_index(1),
    }
}

fn restored_signature(bytes: &[u8]) -> Result<Signature, SnapshotError> {
    let mut sess = Session::<MonoidAlgebra>::restore_bytes(bytes)?;
    let shape = restored_shape();
    Ok(session_signature(&mut sess, &shape))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rasc-prop-snap-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn restore_equals_replay_on_the_full_query_surface() {
    forall(
        "restore_equals_replay_on_the_full_query_surface",
        Config::cases(64),
        |rng| (arb_cons(rng, 1, 24), arb_cons(rng, 0, 8)),
        |(cons, extra)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();

            let (mut original, shape) = build(&dfa, &syms, cons);
            let want = session_signature(&mut original, &shape);
            let bytes = original.snapshot_bytes().expect("solved session snapshots");

            // Restore reproduces every observable...
            let mut restored = Session::<MonoidAlgebra>::restore_bytes(&bytes)
                .expect("round trip of a valid snapshot");
            let shape_r = restored_shape();
            prop_assert_eq!(
                restored.system().num_vars(),
                original.system().num_vars(),
                "restored variable table diverged"
            );
            let got = session_signature(&mut restored, &shape_r);
            prop_assert_eq!(&got, &want, "restore diverged from the snapshotted session");

            // ...and serialization is deterministic: the restored session
            // re-snapshots to byte-identical output.
            let again = restored
                .snapshot_bytes()
                .expect("restored session snapshots");
            prop_assert_eq!(&again, &bytes, "snapshot bytes are not deterministic");

            // The restored session stays usable: growing it converges to
            // the same fixpoint as replaying everything from scratch.
            for c in extra {
                apply(restored.system_mut(), &shape_r, &syms, c);
            }
            restored.system_mut().solve();
            let grown = session_signature(&mut restored, &shape_r);

            let all: Vec<RandCon> = cons.iter().chain(extra).cloned().collect();
            let (mut replay, shape_p) = build(&dfa, &syms, &all);
            let want_grown = session_signature(&mut replay, &shape_p);
            prop_assert_eq!(
                &grown,
                &want_grown,
                "post-restore growth diverged from replay"
            );
            Ok(())
        },
    );
}

#[test]
fn corrupted_snapshots_are_rejected_never_misrestored() {
    forall(
        "corrupted_snapshots_are_rejected_never_misrestored",
        Config::cases(64),
        |rng| {
            let cons = arb_cons(rng, 1, 16);
            let plans: Vec<IoFaultPlan> = (0..rng.gen_range(1..4))
                .map(|_| IoFaultPlan::arbitrary(rng, 4096))
                .collect();
            (cons, plans)
        },
        |(cons, plans)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let (original, _) = build(&dfa, &syms, cons);
            let bytes = original.snapshot_bytes().expect("solved session snapshots");
            let want = restored_signature(&bytes).expect("pristine bytes restore");

            for plan in plans {
                let Some(mangled) = plan.corrupt(&bytes) else {
                    continue;
                };
                if mangled == *bytes {
                    continue; // truncation past the end is a no-op
                }
                // A torn or bit-rotted snapshot must surface as a typed
                // corruption error — or, if the checksums somehow still
                // pass, restore to exactly the original observables.
                // Silent divergence is the one forbidden outcome.
                match restored_signature(&mangled) {
                    Err(SnapshotError::Corrupt { .. }) => {}
                    Err(other) => {
                        prop_assert!(
                            false,
                            "corruption {plan:?} yielded non-corruption error {other:?}"
                        );
                    }
                    Ok(sig) => {
                        prop_assert_eq!(
                            &sig,
                            &want,
                            "corruption {plan:?} silently restored divergent state"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn crash_recovery_yields_last_durable_snapshot_or_typed_error() {
    let dir = temp_dir("crash");
    forall(
        "crash_recovery_yields_last_durable_snapshot_or_typed_error",
        Config::cases(48),
        |rng| {
            (
                arb_cons(rng, 1, 12),
                arb_cons(rng, 1, 8),
                IoFaultPlan::arbitrary(rng, 4096),
            )
        },
        |(base, extra, plan)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();

            // The last durable snapshot: `base` constraints, written
            // atomically and fully fsynced.
            let (old_sess, _) = build(&dfa, &syms, base);
            let old_bytes = old_sess.snapshot_bytes().expect("solved session snapshots");
            let want_old = restored_signature(&old_bytes).expect("durable bytes restore");

            // The snapshot being written when the fault strikes.
            let all: Vec<RandCon> = base.iter().chain(extra).cloned().collect();
            let (new_sess, _) = build(&dfa, &syms, &all);
            let new_bytes = new_sess.snapshot_bytes().expect("solved session snapshots");
            let want_new = restored_signature(&new_bytes).expect("new bytes restore");

            let target = dir.join(format!("case-{:x}.snap", plan.at_byte));
            write_atomic(&target, &old_bytes).expect("seeding the durable snapshot");

            if plan.fails_write() {
                // The device fails mid-write: the writer must surface a
                // typed IO error and the durable snapshot on disk must
                // be untouched. (A fault offset past the snapshot's end
                // never fires — the write then simply completes.)
                let mut sink = FaultyWriter::new(Vec::new(), *plan);
                match new_sess.snapshot_to_writer(&mut sink) {
                    Err(SnapshotError::Io(_)) => {
                        prop_assert!(sink.tripped(), "Io error without the fault firing");
                    }
                    Err(other) => {
                        prop_assert!(false, "write fault surfaced as {other:?}, not Io");
                    }
                    Ok(_) => {
                        prop_assert!(
                            plan.at_byte >= new_bytes.len(),
                            "in-range write fault {plan:?} did not fail the snapshot"
                        );
                    }
                }
                let on_disk = read_snapshot_file(&target).expect("durable target readable");
                prop_assert_eq!(&on_disk, &old_bytes, "failed write touched the target");
                prop_assert_eq!(
                    &restored_signature(&on_disk).expect("durable bytes restore"),
                    &want_old,
                    "recovery after failed write lost the durable snapshot"
                );
            } else if let Some((target_state, tmp_state)) =
                plan.crash_state(Some(&old_bytes), &new_bytes)
            {
                // Crash around the rename: materialize exactly the
                // on-disk world the protocol can leave behind.
                match target_state {
                    Some(contents) => std::fs::write(&target, contents).unwrap(),
                    None => {
                        let _ = std::fs::remove_file(&target);
                    }
                }
                let tmp = target.with_extension("snap.tmp");
                match &tmp_state {
                    Some(contents) => std::fs::write(&tmp, contents).unwrap(),
                    None => {
                        let _ = std::fs::remove_file(&tmp);
                    }
                }

                // Recovery reads the target — never the tmp — and must
                // see exactly one of the two committed worlds.
                let recovered = read_snapshot_file(&target)
                    .expect("crash states always leave a readable target");
                let sig = restored_signature(&recovered)
                    .expect("crash states always leave a valid target");
                let expect = match plan.kind {
                    IoFaultKind::CrashBeforeRename => &want_old,
                    _ => &want_new,
                };
                prop_assert_eq!(&sig, expect, "crash recovery saw a third world ({plan:?})");

                // A stray tmp is either a complete new snapshot or torn;
                // restoring it must never panic or silently diverge.
                if let Some(stray) = tmp_state {
                    match restored_signature(&stray) {
                        Err(SnapshotError::Corrupt { .. }) => {}
                        Err(other) => {
                            prop_assert!(false, "stray tmp gave non-corruption error {other:?}");
                        }
                        Ok(sig) => prop_assert_eq!(
                            &sig,
                            &want_new,
                            "complete stray tmp diverged from the new snapshot"
                        ),
                    }
                }
            }

            let _ = std::fs::remove_file(&target);
            let _ = std::fs::remove_file(target.with_extension("snap.tmp"));
            Ok(())
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
}
