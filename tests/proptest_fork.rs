//! Property tests for copy-on-write session forks ([`Session::fork_from`]
//! over a frozen [`rasc::constraints::BaseSystem`]):
//!
//! * **Fork equals restore equals replay** — a session forked from a
//!   frozen base must answer every observable query (occurrence
//!   annotations, emptiness, acceptance, partial matches, consistency)
//!   exactly like the original, and must re-serialize to byte-identical
//!   snapshot output (pinning provenance records and solved-form layout
//!   under the base/overlay split). Growing the fork converges to the
//!   same fixpoint as replaying everything from scratch.
//! * **Forks are isolated** — growth in one fork is invisible to sibling
//!   forks of the same base.
//! * **Epoch rollback on a fork returns to the base fixpoint** — epochs
//!   opened post-fork journal only overlay entries, so `pop_epoch`
//!   restores the shared base's observables exactly, and the obs
//!   counters a recorder collects over the fork's lifetime net out to
//!   zero (nothing of the shared base is ever "removed").
//!
//! Generators mirror the snapshot fault suite: random constraints over a
//! small fixed shape, compared through sorted semantic signatures.

use std::sync::Arc;

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{BaseSystem, ConsId, SetExpr, System, VarId, Variance};
use rasc::obs::{scoped, Recorder};
use rasc::Session;
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng};

const N_VARS: usize = 6;

#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn arb_cons(rng: &mut Rng, lo: usize, hi: usize) -> Vec<RandCon> {
    (0..rng.gen_range(lo..hi)).map(|_| arb_con(rng)).collect()
}

fn machine() -> (Alphabet, Dfa) {
    // Odd number of `a`, ending in `b` — 4-state minimal machine.
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

struct Shape {
    vars: Vec<VarId>,
    probe: ConsId,
    o: ConsId,
}

fn declare(sys: &mut System<MonoidAlgebra>) -> Shape {
    let vars = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    Shape { vars, probe, o }
}

/// The same dense ids `declare` handed out, for querying forks (which,
/// like restores, are addressed by id rather than re-declared names).
fn dense_shape() -> Shape {
    Shape {
        vars: (0..N_VARS).map(VarId::from_index).collect(),
        probe: ConsId::from_index(0),
        o: ConsId::from_index(1),
    }
}

/// Adds one random constraint directly to a system (no solve).
fn apply(sys: &mut System<MonoidAlgebra>, shape: &Shape, syms: &[SymbolId], c: &RandCon) {
    let ann = |sys: &mut System<MonoidAlgebra>, s: &Option<u8>| match s {
        Some(i) => sys.algebra_mut().word(&[syms[*i as usize]]),
        None => sys.algebra().identity(),
    };
    match *c {
        RandCon::Edge(a, b, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(SetExpr::var(shape.vars[a]), SetExpr::var(shape.vars[b]), w)
                .unwrap();
        }
        RandCon::Const(v, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(
                SetExpr::cons(shape.probe, []),
                SetExpr::var(shape.vars[v]),
                w,
            )
            .unwrap();
        }
        RandCon::Wrap(a, b) => {
            sys.add(
                SetExpr::cons_vars(shape.o, [shape.vars[a]]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Proj(a, b) => {
            sys.add(
                SetExpr::proj(shape.o, 0, shape.vars[a]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Sink(a, b) => {
            sys.add(
                SetExpr::var(shape.vars[a]),
                SetExpr::cons_vars(shape.o, [shape.vars[b]]),
            )
            .unwrap();
        }
    }
}

/// Per-variable semantic observation: sorted probe occurrence annotations
/// (rendered), emptiness, `o`-acceptance, partially matched occurrences —
/// plus global consistency.
type Signature = (Vec<(Vec<String>, bool, bool, Vec<String>)>, bool);

fn session_signature(s: &mut Session<MonoidAlgebra>, shape: &Shape) -> Signature {
    let per_var = shape
        .vars
        .iter()
        .map(|&v| {
            let mut occ: Vec<String> = s
                .occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            occ.sort();
            let nonempty = s.nonempty(v);
            let o_reaches = s.occurs_accepting(v, shape.o);
            let mut pn: Vec<String> = s
                .pn_occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            pn.sort();
            (occ, nonempty, o_reaches, pn)
        })
        .collect();
    (per_var, s.is_consistent())
}

/// Builds a solved session (with provenance recording, as the batch
/// engine always has it) from a constraint list.
fn build(dfa: &Dfa, syms: &[SymbolId], cons: &[RandCon]) -> (Session<MonoidAlgebra>, Shape) {
    let mut sess = Session::new(MonoidAlgebra::new(dfa));
    sess.system_mut().enable_provenance();
    let shape = declare(sess.system_mut());
    for c in cons {
        apply(sess.system_mut(), &shape, syms, c);
    }
    sess.system_mut().solve();
    (sess, shape)
}

/// Freezes a built session into a fork base, keeping its snapshot bytes
/// and solved-form signature for later comparison.
fn frozen(
    dfa: &Dfa,
    syms: &[SymbolId],
    cons: &[RandCon],
) -> (BaseSystem<MonoidAlgebra>, Vec<u8>, Signature) {
    let (mut original, shape) = build(dfa, syms, cons);
    let want = session_signature(&mut original, &shape);
    let bytes = original.snapshot_bytes().expect("solved session snapshots");
    let base = original.into_base().expect("solved session freezes");
    (base, bytes, want)
}

#[test]
fn fork_equals_restore_and_replay_on_the_full_query_surface() {
    forall(
        "fork_equals_restore_and_replay_on_the_full_query_surface",
        Config::cases(64),
        |rng| (arb_cons(rng, 1, 24), arb_cons(rng, 0, 8)),
        |(cons, extra)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let (base, bytes, want) = frozen(&dfa, &syms, cons);
            let shape = dense_shape();

            // A fork answers the whole query surface like the original…
            let mut fork = Session::fork_from(&base);
            let got = session_signature(&mut fork, &shape);
            prop_assert_eq!(&got, &want, "fork diverged from the frozen base");
            prop_assert_eq!(
                fork.stats(),
                base.stats(),
                "fork statistics diverged from the base"
            );

            // …and like a session restored from the base's snapshot.
            let mut restored = Session::<MonoidAlgebra>::restore_bytes(&bytes)
                .expect("round trip of a valid snapshot");
            prop_assert_eq!(
                &session_signature(&mut restored, &shape),
                &want,
                "restore diverged from the frozen base"
            );

            // Re-serializing the fork is byte-identical: the base/overlay
            // split, flatten order, and provenance records are all
            // invisible to the snapshot format.
            let again = fork.snapshot_bytes().expect("forked session snapshots");
            prop_assert_eq!(
                &again,
                &bytes,
                "forked session did not re-snapshot byte-identically"
            );

            // The fork keeps growing like any session, converging to the
            // same fixpoint as an uninterrupted replay of everything…
            for c in extra {
                apply(fork.system_mut(), &shape, &syms, c);
            }
            fork.system_mut().solve();
            let grown = session_signature(&mut fork, &shape);
            let all: Vec<RandCon> = cons.iter().chain(extra).cloned().collect();
            let (mut replay, shape_p) = build(&dfa, &syms, &all);
            let want_grown = session_signature(&mut replay, &shape_p);
            prop_assert_eq!(&grown, &want_grown, "post-fork growth diverged from replay");

            // …while sibling forks of the same base never see that
            // growth: copy-on-write isolation.
            let mut sibling = Session::fork_from(&base);
            prop_assert_eq!(
                &session_signature(&mut sibling, &shape),
                &want,
                "a sibling fork observed another fork's growth"
            );
            Ok(())
        },
    );
}

#[test]
fn fork_epoch_rollback_returns_to_the_base_fixpoint() {
    forall(
        "fork_epoch_rollback_returns_to_the_base_fixpoint",
        Config::cases(64),
        |rng| (arb_cons(rng, 1, 16), arb_cons(rng, 1, 8)),
        |(cons, extra)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let (base, _bytes, want) = frozen(&dfa, &syms, cons);
            let shape = dense_shape();
            let base_stats = base.stats();

            // A recorder installed for the fork's whole lifetime sees
            // every mutation the fork performs — and must see the epoch's
            // additions and its rollback cancel exactly, because nothing
            // the shared base owns is ever journaled or removed.
            let rec = Arc::new(Recorder::new());
            scoped(Arc::clone(&rec) as _, || {
                let mut fork = Session::fork_from(&base);
                fork.push_epoch();
                for c in extra {
                    apply(fork.system_mut(), &shape, &syms, c);
                }
                fork.system_mut().solve();
                prop_assert!(fork.pop_epoch(), "the pushed epoch must pop");

                let got = session_signature(&mut fork, &shape);
                prop_assert_eq!(
                    &got,
                    &want,
                    "epoch rollback on a fork did not restore the base fixpoint"
                );
                let stats = fork.stats();
                prop_assert_eq!(stats.vars, base_stats.vars, "vars not rolled back");
                prop_assert_eq!(stats.edges, base_stats.edges, "edges not rolled back");
                prop_assert_eq!(
                    stats.lower_bounds,
                    base_stats.lower_bounds,
                    "lower bounds not rolled back"
                );
                prop_assert_eq!(
                    stats.upper_bounds,
                    base_stats.upper_bounds,
                    "upper bounds not rolled back"
                );
                prop_assert_eq!(
                    stats.constructors,
                    base_stats.constructors,
                    "constructors not rolled back"
                );

                for (added, removed) in [
                    ("solver.edges.added", "solver.edges.removed"),
                    ("solver.lbs.added", "solver.lbs.removed"),
                    ("solver.ubs.added", "solver.ubs.removed"),
                    ("solver.facts", "solver.facts.rolled_back"),
                    ("solver.fuel", "solver.fuel.rolled_back"),
                ] {
                    prop_assert_eq!(
                        i128::from(rec.counter_value(added)),
                        i128::from(rec.counter_value(removed)),
                        "`{added}` and `{removed}` must cancel after a fork's rollback"
                    );
                }
                Ok(())
            })
        },
    );
}
