//! Integration test: the paper's worked Example 2.4 in full, including the
//! §3.1 solved form and the §3.2 entailment query.

use rasc::automata::{Alphabet, Dfa, Monoid};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{SetExpr, System, Variance};

fn one_bit() -> (Alphabet, Dfa) {
    let mut sigma = Alphabet::new();
    let g = sigma.intern("g");
    let k = sigma.intern("k");
    let dfa = Dfa::one_bit(&sigma, g, k);
    (sigma, dfa)
}

#[test]
fn the_monoid_of_m_1bit() {
    // §3.3: F_M^≡ = {f_ε, f_g, f_k}; f_g∘f_g = f_g, f_k∘f_g = f_k, and a
    // gen cancels an adjacent matching kill (f_g∘f_k = f_g).
    let (sigma, dfa) = one_bit();
    let mut monoid = Monoid::of_dfa(&dfa);
    assert_eq!(monoid.len(), 3);
    let g = sigma.lookup("g").unwrap();
    let k = sigma.lookup("k").unwrap();
    let fg = monoid.generator(g);
    let fk = monoid.generator(k);
    assert_eq!(monoid.compose(fg, fg), fg);
    assert_eq!(monoid.compose(fk, fg), fk);
    assert_eq!(monoid.compose(fg, fk), fg);
    // f_g as the paper gives it: f_g(0) = 1 and f_g(1) = 1.
    let f = monoid.repr_fn(fg);
    assert!(f.images().all(|s| s.index() == 1));
}

#[test]
fn example_2_4_solved_form_and_query() {
    let (sigma, dfa) = one_bit();
    let g = sigma.lookup("g").unwrap();
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let (w, x, y, z) = (sys.var("W"), sys.var("X"), sys.var("Y"), sys.var("Z"));
    let c = sys.constructor("c", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    let fg = sys.algebra_mut().word(&[g]);

    // c ⊆^g W, o(W) ⊆^g X, X ⊆ o(Y), o(Y) ⊆ Z.
    sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
        .unwrap();
    sys.add_ann(SetExpr::cons_vars(o, [w]), SetExpr::var(x), fg)
        .unwrap();
    sys.add(SetExpr::var(x), SetExpr::cons_vars(o, [y]))
        .unwrap();
    sys.add(SetExpr::cons_vars(o, [y]), SetExpr::var(z))
        .unwrap();
    sys.solve();
    assert!(sys.is_consistent());

    // Solved form (§3.1): W ⊆^{f_g} Y from decomposition, and the
    // transitive constraint c ⊆^{f_g} Y because f_g ∘ f_g = f_g.
    assert!(sys
        .edges_from(w)
        .iter()
        .any(|&(to, ann)| to == y && ann == fg));
    assert_eq!(sys.lower_bound_annotations(y, c), vec![fg]);
    // W's direct bound is the original constraint.
    assert_eq!(sys.lower_bound_annotations(w, c), vec![fg]);

    // §3.2 query: the entailment ⊨ o(c) ⊆^{f_g} Z holds — the paper's
    // least solution for Z contains o^{f_g}(c^{f_g}). The enumeration
    // seeds f_ε at every constructor occurrence (the query convention), so
    // the ε-rooted variant also appears; the resolution-forced f_g class
    // on the o occurrence (from f_g ∘ β ⊆ γ) must be present.
    let terms = sys.ground_terms(z, 3, 16);
    assert!(!terms.is_empty());
    let paper_term = terms
        .iter()
        .find(|t| t.cons == o && sys.algebra().is_accepting(t.ann))
        .expect("o^{f_g}(…) is in Z's solution");
    assert_eq!(paper_term.args.len(), 1);
    assert_eq!(paper_term.args[0].cons, c);
    assert!(
        sys.algebra().is_accepting(paper_term.args[0].ann),
        "the inner c carries f_g"
    );
    // Every enumerated term has the accepting inner annotation — only the
    // root constructor's class varies with the seeded ε.
    for t in &terms {
        assert!(sys.algebra().is_accepting(t.args[0].ann));
    }

    // And the same via the occurrence query.
    let w2 = sys.occurrence_witness(z, c).expect("c is in Z's solution");
    assert_eq!(w2.stack, vec![o]);

    // The left-hand side of the instantiated constraint illustrates that
    // annotations on different constructor levels differ: X's terms are
    // o^{f_ε-composed-later}(c^{f_g}) — the inner c carries f_g while the
    // flow into X carries f_g only at the top level. Check the top-level
    // entry for o at X.
    assert_eq!(sys.lower_bound_annotations(x, o).len(), 1);
}

#[test]
fn queries_are_preserved_across_incremental_additions() {
    // Bidirectional solving is online (§5.1): adding constraints after a
    // solve refines the solution without rebuilding.
    let (sigma, dfa) = one_bit();
    let g = sigma.lookup("g").unwrap();
    let k = sigma.lookup("k").unwrap();
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let (a, b) = (sys.var("A"), sys.var("B"));
    let c = sys.constructor("c", &[]);
    let fg = sys.algebra_mut().word(&[g]);
    let fk = sys.algebra_mut().word(&[k]);

    sys.add_ann(SetExpr::cons(c, []), SetExpr::var(a), fg)
        .unwrap();
    sys.solve();
    assert!(sys.lower_bound_annotations(b, c).is_empty());

    sys.add_ann(SetExpr::var(a), SetExpr::var(b), fk).unwrap();
    sys.solve();
    assert_eq!(sys.lower_bound_annotations(b, c), vec![fk]);

    // A second, canceling path: now both classes reach B.
    sys.add_ann(SetExpr::var(a), SetExpr::var(b), fg).unwrap();
    sys.solve();
    assert_eq!(sys.lower_bound_annotations(b, c).len(), 2);
}
