//! Differential semantics test: a naive interpreter of the paper's §2
//! semantics — annotated ground terms, the `·w` append operation applied
//! at every level, constructor-annotation variables with `f∘α ⊆ β`
//! constraints, all iterated to a fixpoint over M-regular classes — is
//! compared against the solver's enumerated least solution
//! ([`System::ground_terms`]) on random small systems.
//!
//! The machine is the Figure 2 adversarial machine, on which *every*
//! representative function is useful (all states reachable and
//! co-reachable), so the solver's pruning cannot legitimately drop
//! anything and the two term sets must agree exactly (up to the depth
//! bound).

use std::collections::{BTreeSet, HashMap};

use rasc::automata::{adversarial_machine, FnId, Monoid, SymbolId};
use rasc::constraints::algebra::MonoidAlgebra;
use rasc::constraints::{ConsId, GroundTerm, SetExpr, System, VarId, Variance};
use rasc_devtools::{forall, prop_assert_eq, Config, Rng};

const N_VARS: usize = 5;
/// Comparison depth.
const DEPTH: usize = 3;
/// The naive interpreter tracks deeper terms than the comparison bound so
/// that wrap-then-project chains cannot silently drop shallow results.
const NAIVE_DEPTH: usize = DEPTH + 4;

#[derive(Debug, Clone)]
enum RandCon {
    /// `a ⊆^σ b`
    Edge(usize, usize, u8),
    /// `probe ⊆^σ v`
    Const(usize, u8),
    /// `o(a) ⊆ b`
    Wrap(usize, usize),
    /// `o⁻¹(a) ⊆ b`
    Proj(usize, usize),
    /// `a ⊆ o(b)`
    Sink(usize, usize),
}

/// Weighted choice mirroring the original distribution 4:3:2:2:1.
fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=3 => {
            let (a, b) = (v(rng), v(rng));
            let s = rng.gen_range(0..3) as u8;
            RandCon::Edge(a, b, s)
        }
        4..=6 => {
            let a = v(rng);
            let s = rng.gen_range(0..3) as u8;
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

/// A naive annotated ground term over monoid classes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum NaiveTerm {
    Probe(FnId),
    Wrapped(FnId, Box<NaiveTerm>),
}

impl NaiveTerm {
    fn depth(&self) -> usize {
        match self {
            NaiveTerm::Probe(_) => 1,
            NaiveTerm::Wrapped(_, t) => 1 + t.depth(),
        }
    }

    /// The paper's append: `c^x(t…)·w = c^{xw}(t·w…)`.
    fn append(&self, monoid: &mut Monoid, w: FnId) -> NaiveTerm {
        match self {
            NaiveTerm::Probe(f) => NaiveTerm::Probe(monoid.compose(w, *f)),
            NaiveTerm::Wrapped(f, t) => {
                NaiveTerm::Wrapped(monoid.compose(w, *f), Box::new(t.append(monoid, w)))
            }
        }
    }
}

/// The naive least M-regular solution, depth-bounded.
fn naive_solution(cons: &[RandCon], monoid: &mut Monoid) -> Vec<BTreeSet<NaiveTerm>> {
    let mut rho: Vec<BTreeSet<NaiveTerm>> = vec![BTreeSet::new(); N_VARS];
    // Constructor-annotation sets α per wrap/sink expression key (the
    // unary constructor applied to a variable).
    let mut alpha: HashMap<usize, BTreeSet<FnId>> = HashMap::new();
    let e = monoid.identity();
    for c in cons {
        match c {
            RandCon::Wrap(a, _) | RandCon::Sink(_, a) => {
                alpha.entry(*a).or_default().insert(e);
            }
            _ => {}
        }
    }

    let gen = |monoid: &mut Monoid, s: u8| monoid.generator(SymbolId::from_index(s as usize));
    loop {
        let mut changed = false;
        for c in cons {
            match *c {
                RandCon::Const(v, s) => {
                    let f = gen(monoid, s);
                    // probe^ε · σ = probe^σ.
                    changed |= rho[v].insert(NaiveTerm::Probe(f));
                }
                RandCon::Edge(a, b, s) => {
                    let f = gen(monoid, s);
                    let moved: Vec<NaiveTerm> =
                        rho[a].iter().map(|t| t.append(monoid, f)).collect();
                    for t in moved {
                        changed |= rho[b].insert(t);
                    }
                }
                RandCon::Wrap(a, b) => {
                    let alphas: Vec<FnId> = alpha
                        .get(&a)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    let mut new = Vec::new();
                    for t in rho[a].iter() {
                        if t.depth() < NAIVE_DEPTH {
                            for &f in &alphas {
                                new.push(NaiveTerm::Wrapped(f, Box::new(t.clone())));
                            }
                        }
                    }
                    for t in new {
                        changed |= rho[b].insert(t);
                    }
                }
                RandCon::Proj(a, b) => {
                    let comps: Vec<NaiveTerm> = rho[a]
                        .iter()
                        .filter_map(|t| match t {
                            NaiveTerm::Wrapped(_, inner) => Some((**inner).clone()),
                            NaiveTerm::Probe(_) => None,
                        })
                        .collect();
                    for t in comps {
                        changed |= rho[b].insert(t);
                    }
                }
                RandCon::Sink(a, b) => {
                    // ρ(a) ⊆ ρ(o^α(B)): components flow to B, root classes
                    // flow into α (the f∘α ⊆ β function constraints).
                    let mut comps = Vec::new();
                    let mut roots = Vec::new();
                    for t in rho[a].iter() {
                        if let NaiveTerm::Wrapped(f, inner) = t {
                            roots.push(*f);
                            comps.push((**inner).clone());
                        }
                    }
                    for t in comps {
                        changed |= rho[b].insert(t);
                    }
                    let entry = alpha.entry(b).or_default();
                    for f in roots {
                        changed |= entry.insert(f);
                    }
                }
            }
        }
        if !changed {
            return rho;
        }
    }
}

/// Renders a solver ground term into the naive form (mapping annotation
/// ids through the shared monoid construction — both sides intern the
/// generators in the same order, and compositions are canonical by the
/// function table, so we re-intern via images).
fn convert(
    t: &GroundTerm,
    probe: ConsId,
    sys_alg: &MonoidAlgebra,
    monoid: &mut Monoid,
) -> NaiveTerm {
    let images: Vec<usize> = sys_alg
        .monoid()
        .repr_fn(FnId::from_index(t.ann.index()))
        .images()
        .map(|s| s.index())
        .collect();
    // Find/intern the same function in the naive monoid by composing a
    // word that realizes it — instead, match by images over the closed
    // monoid (the adversarial monoid is fully closed below).
    let f = monoid
        .fn_ids()
        .find(|&f| {
            monoid
                .repr_fn(f)
                .images()
                .map(|s| s.index())
                .collect::<Vec<_>>()
                == images
        })
        .expect("function exists in the closed monoid");
    if t.cons == probe {
        NaiveTerm::Probe(f)
    } else {
        NaiveTerm::Wrapped(f, Box::new(convert(&t.args[0], probe, sys_alg, monoid)))
    }
}

#[test]
fn solver_least_solution_matches_naive_semantics() {
    forall(
        "solver_least_solution_matches_naive_semantics",
        Config::cases(160),
        |rng| {
            (0..rng.gen_range(1..10))
                .map(|_| arb_con(rng))
                .collect::<Vec<_>>()
        },
        |cons| {
            let (_, machine) = adversarial_machine(3);
            let mut monoid = Monoid::of_dfa(&machine.minimize());
            let naive = naive_solution(cons, &mut monoid);

            let mut sys = System::new(MonoidAlgebra::new(&machine));
            let vars: Vec<VarId> = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
            let probe = sys.constructor("probe", &[]);
            let o = sys.constructor("o", &[Variance::Covariant]);
            for c in cons {
                match *c {
                    RandCon::Edge(a, b, s) => {
                        let ann = sys.algebra_mut().word(&[SymbolId::from_index(s as usize)]);
                        sys.add_ann(SetExpr::var(vars[a]), SetExpr::var(vars[b]), ann)
                            .unwrap();
                    }
                    RandCon::Const(v, s) => {
                        let ann = sys.algebra_mut().word(&[SymbolId::from_index(s as usize)]);
                        sys.add_ann(SetExpr::cons(probe, []), SetExpr::var(vars[v]), ann)
                            .unwrap();
                    }
                    RandCon::Wrap(a, b) => {
                        sys.add(SetExpr::cons_vars(o, [vars[a]]), SetExpr::var(vars[b]))
                            .unwrap();
                    }
                    RandCon::Proj(a, b) => {
                        sys.add(SetExpr::proj(o, 0, vars[a]), SetExpr::var(vars[b]))
                            .unwrap();
                    }
                    RandCon::Sink(a, b) => {
                        sys.add(SetExpr::var(vars[a]), SetExpr::cons_vars(o, [vars[b]]))
                            .unwrap();
                    }
                }
            }
            sys.solve();

            for v in 0..N_VARS {
                let terms = sys.ground_terms(vars[v], DEPTH, 4096);
                let got: BTreeSet<NaiveTerm> = terms
                    .iter()
                    .map(|t| convert(t, probe, sys.algebra(), &mut monoid))
                    .collect();
                let want: BTreeSet<NaiveTerm> = naive[v]
                    .iter()
                    .filter(|t| t.depth() <= DEPTH)
                    .cloned()
                    .collect();
                prop_assert_eq!(&got, &want, "var v{v} disagrees");
            }
            Ok(())
        },
    );
}
