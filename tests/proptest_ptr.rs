//! Property tests for the points-to analysis: on random MiniPtr programs,
//! the stack-aware alias relation must *refine* the flat one (contexts can
//! separate locations, never merge them), and basic structural laws hold.

use proptest::prelude::*;
use rasc::ptr::{PointsTo, Program};

const VARS: [&str; 5] = ["p", "q", "r", "s", "t"];
const TARGETS: [&str; 3] = ["a", "b", "c"];

#[derive(Debug, Clone)]
enum RandStmt {
    AddrOf(usize, usize),
    Copy(usize, usize),
    Load(usize, usize),
    Store(usize, usize),
    Alloc(usize),
    FieldStore(usize, usize),
    FieldLoad(usize, usize),
    CallF(usize, usize), // f(x, y)
}

fn arb_stmt() -> impl Strategy<Value = RandStmt> {
    prop_oneof![
        3 => (0..VARS.len(), 0..TARGETS.len()).prop_map(|(d, o)| RandStmt::AddrOf(d, o)),
        3 => (0..VARS.len(), 0..VARS.len()).prop_map(|(d, s)| RandStmt::Copy(d, s)),
        2 => (0..VARS.len(), 0..VARS.len()).prop_map(|(d, s)| RandStmt::Load(d, s)),
        2 => (0..VARS.len(), 0..VARS.len()).prop_map(|(d, s)| RandStmt::Store(d, s)),
        1 => (0..VARS.len()).prop_map(RandStmt::Alloc),
        1 => (0..VARS.len(), 0..VARS.len()).prop_map(|(b, s)| RandStmt::FieldStore(b, s)),
        1 => (0..VARS.len(), 0..VARS.len()).prop_map(|(d, b)| RandStmt::FieldLoad(d, b)),
        2 => (0..VARS.len(), 0..VARS.len()).prop_map(|(x, y)| RandStmt::CallF(x, y)),
    ]
}

fn render(stmts: &[RandStmt]) -> String {
    let mut main = String::new();
    for s in stmts {
        let line = match *s {
            RandStmt::AddrOf(d, o) => format!("{} = &{};", VARS[d], TARGETS[o]),
            RandStmt::Copy(d, s) => format!("{} = {};", VARS[d], VARS[s]),
            RandStmt::Load(d, s) => format!("{} = *{};", VARS[d], VARS[s]),
            RandStmt::Store(d, s) => format!("*{} = {};", VARS[d], VARS[s]),
            RandStmt::Alloc(d) => format!("{} = alloc;", VARS[d]),
            RandStmt::FieldStore(b, s) => format!("{}.f = {};", VARS[b], VARS[s]),
            RandStmt::FieldLoad(d, b) => format!("{} = {}.f;", VARS[d], VARS[b]),
            RandStmt::CallF(x, y) => format!("sink({}, {});", VARS[x], VARS[y]),
        };
        main.push_str("    ");
        main.push_str(&line);
        main.push('\n');
    }
    format!("fn sink(u, v) {{ }}\nfn main() {{\n{main}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stack_aware_alias_refines_flat_alias(stmts in proptest::collection::vec(arb_stmt(), 1..16)) {
        let src = render(&stmts);
        let program = Program::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let mut pt = PointsTo::analyze(&program).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let mut names: Vec<String> = VARS.iter().map(|v| format!("main::{v}")).collect();
        names.push("sink::u".to_owned());
        names.push("sink::v".to_owned());
        for x in &names {
            for y in &names {
                if pt.points_to(x).is_err() || pt.points_to(y).is_err() {
                    continue; // variable never occurred
                }
                let flat = pt.may_alias(x, y).unwrap();
                let stack = pt.may_alias_stack_aware(x, y).unwrap();
                prop_assert!(
                    !stack || flat,
                    "stack-aware alias without flat alias for ({x}, {y}) in\n{src}"
                );
                // Symmetry of both relations.
                prop_assert_eq!(flat, pt.may_alias(y, x).unwrap());
                prop_assert_eq!(stack, pt.may_alias_stack_aware(y, x).unwrap());
            }
        }
        // Self-alias agrees with non-emptiness of the flat set.
        for x in &names {
            if let Ok(set) = pt.points_to(x) {
                prop_assert_eq!(pt.may_alias(x, x).unwrap(), !set.is_empty());
            }
        }
    }
}
