//! Property tests for the points-to analysis: on random MiniPtr programs,
//! the stack-aware alias relation must *refine* the flat one (contexts can
//! separate locations, never merge them), and basic structural laws hold.

use rasc::ptr::{PointsTo, Program};
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng};

const VARS: [&str; 5] = ["p", "q", "r", "s", "t"];
const TARGETS: [&str; 3] = ["a", "b", "c"];

#[derive(Debug, Clone)]
enum RandStmt {
    AddrOf(usize, usize),
    Copy(usize, usize),
    Load(usize, usize),
    Store(usize, usize),
    Alloc(usize),
    FieldStore(usize, usize),
    FieldLoad(usize, usize),
    CallF(usize, usize), // f(x, y)
}

/// Weighted choice mirroring the original distribution 3:3:2:2:1:1:1:2.
fn arb_stmt(rng: &mut Rng) -> RandStmt {
    let v = |rng: &mut Rng| rng.gen_range(0..VARS.len());
    match rng.gen_range(0..15) {
        0..=2 => {
            let d = v(rng);
            RandStmt::AddrOf(d, rng.gen_range(0..TARGETS.len()))
        }
        3..=5 => RandStmt::Copy(v(rng), v(rng)),
        6 | 7 => RandStmt::Load(v(rng), v(rng)),
        8 | 9 => RandStmt::Store(v(rng), v(rng)),
        10 => RandStmt::Alloc(v(rng)),
        11 => RandStmt::FieldStore(v(rng), v(rng)),
        12 => RandStmt::FieldLoad(v(rng), v(rng)),
        _ => RandStmt::CallF(v(rng), v(rng)),
    }
}

fn render(stmts: &[RandStmt]) -> String {
    let mut main = String::new();
    for s in stmts {
        let line = match *s {
            RandStmt::AddrOf(d, o) => format!("{} = &{};", VARS[d], TARGETS[o]),
            RandStmt::Copy(d, s) => format!("{} = {};", VARS[d], VARS[s]),
            RandStmt::Load(d, s) => format!("{} = *{};", VARS[d], VARS[s]),
            RandStmt::Store(d, s) => format!("*{} = {};", VARS[d], VARS[s]),
            RandStmt::Alloc(d) => format!("{} = alloc;", VARS[d]),
            RandStmt::FieldStore(b, s) => format!("{}.f = {};", VARS[b], VARS[s]),
            RandStmt::FieldLoad(d, b) => format!("{} = {}.f;", VARS[d], VARS[b]),
            RandStmt::CallF(x, y) => format!("sink({}, {});", VARS[x], VARS[y]),
        };
        main.push_str("    ");
        main.push_str(&line);
        main.push('\n');
    }
    format!("fn sink(u, v) {{ }}\nfn main() {{\n{main}}}\n")
}

#[test]
fn stack_aware_alias_refines_flat_alias() {
    forall(
        "stack_aware_alias_refines_flat_alias",
        Config::cases(128),
        |rng| {
            (0..rng.gen_range(1..16))
                .map(|_| arb_stmt(rng))
                .collect::<Vec<_>>()
        },
        |stmts| {
            let src = render(stmts);
            let program = Program::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            let mut pt = PointsTo::analyze(&program).unwrap_or_else(|e| panic!("{e}\n{src}"));
            let mut names: Vec<String> = VARS.iter().map(|v| format!("main::{v}")).collect();
            names.push("sink::u".to_owned());
            names.push("sink::v".to_owned());
            for x in &names {
                for y in &names {
                    if pt.points_to(x).is_err() || pt.points_to(y).is_err() {
                        continue; // variable never occurred
                    }
                    let flat = pt.may_alias(x, y).unwrap();
                    let stack = pt.may_alias_stack_aware(x, y).unwrap();
                    prop_assert!(
                        !stack || flat,
                        "stack-aware alias without flat alias for ({x}, {y}) in\n{src}"
                    );
                    // Symmetry of both relations.
                    prop_assert_eq!(flat, pt.may_alias(y, x).unwrap());
                    prop_assert_eq!(stack, pt.may_alias_stack_aware(y, x).unwrap());
                }
            }
            // Self-alias agrees with non-emptiness of the flat set.
            for x in &names {
                if let Ok(set) = pt.points_to(x) {
                    let nonempty = !set.is_empty();
                    prop_assert_eq!(pt.may_alias(x, x).unwrap(), nonempty);
                }
            }
            Ok(())
        },
    );
}
