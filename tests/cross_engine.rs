//! Randomized cross-engine agreement: on generated programs, the
//! annotated-constraint checker (bidirectional), the forward solver
//! encoding, and the direct pushdown `post*` checker must agree on
//! whether — and where — the privilege property is violated.

use rasc::automata::{Alphabet, Dfa, PropertySpec};
use rasc::cfgir::{Cfg, EdgeLabel, NodeId, Program};
use rasc::constraints::forward::ForwardSystem;
use rasc::constraints::Variance;
use rasc::pdmc::{properties, ConstraintChecker};
use rasc::pushdown::PdsChecker;
use rasc_bench::workload::{generate, WorkloadConfig};

fn violating_nodes_constraints(cfg: &Cfg, sigma: &Alphabet, dfa: &Dfa) -> Vec<NodeId> {
    let mut checker = ConstraintChecker::new(cfg, sigma, dfa, "main").unwrap();
    checker.solve();
    checker.violations()
}

fn violating_nodes_forward(cfg: &Cfg, sigma: &Alphabet, dfa: &Dfa) -> Vec<NodeId> {
    let mut sys = ForwardSystem::new(dfa);
    let vars: Vec<_> = (0..cfg.num_nodes())
        .map(|i| sys.var(&format!("S{i}")))
        .collect();
    let pc = sys.constant("pc");
    sys.add_constant(pc, vars[cfg.entry("main").unwrap().entry.index()]);
    for (from, to, label) in cfg.edges() {
        let ann = match label {
            EdgeLabel::Plain => sys.identity(),
            EdgeLabel::Event { name, .. } => match sigma.lookup(name) {
                Some(s) => sys.word(&[s]),
                None => sys.identity(),
            },
        };
        sys.add_edge(vars[from.index()], vars[to.index()], ann);
    }
    let eps = sys.identity();
    for site in cfg.call_sites() {
        let callee = &cfg.functions()[site.callee.index()];
        let o_i = sys.declare(&format!("o{}", site.id.index()), &[Variance::Covariant]);
        sys.add_source(
            o_i,
            &[vars[site.call_node.index()]],
            vars[callee.entry.index()],
            eps,
        )
        .unwrap();
        sys.add_projection(
            o_i,
            0,
            vars[callee.exit.index()],
            vars[site.return_node.index()],
            eps,
        )
        .unwrap();
    }
    sys.solve();
    let occ = sys.constant_occurrence_states(pc);
    (0..cfg.num_nodes())
        .filter(|&n| occ[vars[n].index()].iter().any(|&s| sys.state_accepting(s)))
        .map(NodeId::from_index)
        .collect()
}

fn violating_nodes_pds(cfg: &Cfg, sigma: &Alphabet, dfa: &Dfa) -> Vec<NodeId> {
    let checker = PdsChecker::new(cfg, sigma, dfa, "main").unwrap();
    let mut nodes: Vec<NodeId> = checker.run().into_iter().map(|v| v.node).collect();
    nodes.sort();
    nodes.dedup();
    // The backward (pre*) decision procedure must agree on the verdict.
    assert_eq!(
        !nodes.is_empty(),
        checker.violated_backward(),
        "post* vs pre*"
    );
    nodes
}

#[test]
fn three_engines_agree_on_random_programs_simple_property() {
    let spec = PropertySpec::parse(properties::SIMPLE_PRIVILEGE).unwrap();
    let (sigma, dfa) = spec.compile();
    let names: Vec<String> = sigma.symbols().map(|s| sigma.name(s).to_owned()).collect();
    for seed in 0..25u64 {
        let wl = WorkloadConfig::sized(120, names.clone(), seed);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).unwrap();
        let a = violating_nodes_constraints(&cfg, &sigma, &dfa);
        let b = violating_nodes_forward(&cfg, &sigma, &dfa);
        let c = violating_nodes_pds(&cfg, &sigma, &dfa);
        assert_eq!(a, b, "bidirectional vs forward, seed {seed}\n{program}");
        assert_eq!(a, c, "constraints vs pushdown, seed {seed}\n{program}");
    }
}

#[test]
fn three_engines_agree_on_random_programs_full_property() {
    let (sigma, dfa) = properties::full_privilege_property();
    let names: Vec<String> = sigma.symbols().map(|s| sigma.name(s).to_owned()).collect();
    for seed in 100..115u64 {
        let wl = WorkloadConfig::sized(200, names.clone(), seed);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).unwrap();
        let a = violating_nodes_constraints(&cfg, &sigma, &dfa);
        let b = violating_nodes_forward(&cfg, &sigma, &dfa);
        let c = violating_nodes_pds(&cfg, &sigma, &dfa);
        assert_eq!(a, b, "bidirectional vs forward, seed {seed}");
        assert_eq!(a, c, "constraints vs pushdown, seed {seed}");
    }
}

#[test]
fn engines_agree_on_deep_recursion() {
    let spec = PropertySpec::parse(properties::SIMPLE_PRIVILEGE).unwrap();
    let (sigma, dfa) = spec.compile();
    // Mutually recursive functions with the grant/drop/exec events spread
    // across them.
    let src = "fn a() { event seteuid_zero; if (*) { b(); } }
        fn b() { if (*) { a(); } else { event execl; } }
        fn main() { a(); }";
    let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
    let x = violating_nodes_constraints(&cfg, &sigma, &dfa);
    let y = violating_nodes_pds(&cfg, &sigma, &dfa);
    let z = violating_nodes_forward(&cfg, &sigma, &dfa);
    assert!(!x.is_empty());
    assert_eq!(x, y);
    assert_eq!(x, z);
}
