//! Property-based tests for the constraint solvers: the bidirectional
//! solver against an exact path-enumeration oracle on random DAGs,
//! strategy agreement, and the substitution-environment algebra against a
//! direct per-instance simulation.

use std::collections::BTreeSet;

use rasc::automata::{adversarial_machine, Monoid, PropertySpec, SymbolId};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra, SubstAlgebra};
use rasc::constraints::{SetExpr, System};
use rasc_bench::constraints_workload::{
    run_backward, run_bidirectional, run_forward, EdgeListWorkload,
};
use rasc_devtools::{forall, prop_assert_eq, Config, Rng};

/// A random DAG workload: edges always go from lower to higher indices,
/// so path enumeration terminates.
fn arb_dag(rng: &mut Rng, n_vars: usize, n_syms: usize) -> EdgeListWorkload {
    let edges = (0..rng.gen_range(1..24))
        .map(|_| {
            let a = rng.gen_range(0..n_vars - 1);
            let b = rng.gen_range(1..n_vars);
            let s = rng.gen_range(0..n_syms);
            let from = a.min(b.saturating_sub(1));
            let to = from + 1 + (b - 1 - from).min(n_vars - 2 - from);
            (from, to, vec![SymbolId::from_index(s)])
        })
        .collect();
    EdgeListWorkload {
        n_vars,
        edges,
        source: 0,
        sink: n_vars - 1,
    }
}

/// Exact oracle: enumerate all paths source → var in the DAG and collect
/// the monoid classes of their words.
fn oracle_classes(
    wl: &EdgeListWorkload,
    monoid: &mut Monoid,
) -> Vec<BTreeSet<rasc::automata::FnId>> {
    let mut classes: Vec<BTreeSet<rasc::automata::FnId>> = vec![BTreeSet::new(); wl.n_vars];
    classes[wl.source].insert(monoid.identity());
    // Process vars in topological (index) order.
    for v in 0..wl.n_vars {
        let reached: Vec<_> = classes[v].iter().copied().collect();
        for (from, to, word) in &wl.edges {
            if *from != v {
                continue;
            }
            for &f in &reached {
                let g = monoid.of_word(word);
                let composed = monoid.compose(g, f);
                classes[*to].insert(composed);
            }
        }
    }
    classes
}

/// Edge lists shrink via the `Vec` instance; the fixed endpoints survive.
fn edges_to_workload(n_vars: usize, edges: Vec<(usize, usize, Vec<SymbolId>)>) -> EdgeListWorkload {
    EdgeListWorkload {
        n_vars,
        edges,
        source: 0,
        sink: n_vars - 1,
    }
}

#[test]
fn bidirectional_solver_matches_path_enumeration() {
    forall(
        "bidirectional_solver_matches_path_enumeration",
        Config::cases(64),
        |rng| arb_dag(rng, 8, 3).edges,
        |edges| {
            let wl = edges_to_workload(8, edges.clone());
            let (_, machine) = adversarial_machine(3);
            let mut monoid = Monoid::lazy_of_dfa(&machine.minimize());
            let expected = oracle_classes(&wl, &mut monoid);

            let mut sys = System::new(MonoidAlgebra::new(&machine));
            let vars: Vec<_> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
            let probe = sys.constructor("probe", &[]);
            sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
                .unwrap();
            for (from, to, word) in &wl.edges {
                let ann = sys.algebra_mut().word(word);
                sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
                    .unwrap();
            }
            sys.solve();

            // The adversarial machine has every state useful, so no pruning:
            // the solved lower bounds must be exactly the oracle's classes.
            for v in 0..wl.n_vars {
                let got: BTreeSet<usize> = sys
                    .lower_bound_annotations(vars[v], probe)
                    .into_iter()
                    .map(|a| a.index())
                    .collect();
                let want: BTreeSet<usize> = expected[v].iter().map(|f| f.index()).collect();
                // Compare via the underlying function tables (ids may differ
                // between the two monoid instances).
                let got_fns: BTreeSet<Vec<usize>> = got
                    .iter()
                    .map(|&i| {
                        sys.algebra()
                            .monoid()
                            .repr_fn(rasc::automata::FnId::from_index(i))
                            .images()
                            .map(|s| s.index())
                            .collect()
                    })
                    .collect();
                let want_fns: BTreeSet<Vec<usize>> = want
                    .iter()
                    .map(|&i| {
                        monoid
                            .repr_fn(rasc::automata::FnId::from_index(i))
                            .images()
                            .map(|s| s.index())
                            .collect()
                    })
                    .collect();
                prop_assert_eq!(got_fns, want_fns, "var {v}");
            }
            Ok(())
        },
    );
}

#[test]
fn all_strategies_agree_on_random_dags() {
    forall(
        "all_strategies_agree_on_random_dags",
        Config::cases(64),
        |rng| arb_dag(rng, 10, 3).edges,
        |edges| {
            let wl = edges_to_workload(10, edges.clone());
            let (_, machine) = adversarial_machine(3);
            let b = run_bidirectional(&machine, &wl);
            let f = run_forward(&machine, &wl);
            let k = run_backward(&machine, &wl);
            prop_assert_eq!(b.reached, f.reached);
            prop_assert_eq!(b.reached, k.reached);
            Ok(())
        },
    );
}

/// A random parametric event: `open`/`close`, instantiated at one of three
/// labels or non-parametric (applies to every instance).
#[derive(Debug, Clone, Copy, PartialEq)]
enum PEvent {
    Open(Option<u8>),
    Close(Option<u8>),
}

fn arb_pevents(rng: &mut Rng) -> Vec<PEvent> {
    (0..rng.gen_range(0..10))
        .map(|_| {
            let label = if rng.gen_bool(0.5) {
                Some(rng.gen_range(0..3) as u8)
            } else {
                None
            };
            if rng.gen_bool(0.5) {
                PEvent::Open(label)
            } else {
                PEvent::Close(label)
            }
        })
        .collect()
}

#[test]
fn substitution_environments_match_per_instance_simulation() {
    forall(
        "substitution_environments_match_per_instance_simulation",
        Config::cases(128),
        arb_pevents,
        |events| {
            // The §6.4 semantics: an instance (x: ℓ) experiences the
            // parametric events instantiated at ℓ plus every non-parametric
            // event, in program order. Compose substitution environments and
            // compare against that direct simulation for every label.
            let spec = PropertySpec::parse(
                "start state Closed : | open(x) -> Opened;\n\
                 accept state Opened : | close(x) -> Closed;",
            )
            .unwrap();
            let (sigma, dfa) = spec.compile();
            let open_sym = sigma.lookup("open").unwrap();
            let close_sym = sigma.lookup("close").unwrap();

            let mut alg = SubstAlgebra::new(&dfa);
            let x = alg.param("x");
            let labels = [alg.label("l0"), alg.label("l1"), alg.label("l2")];

            let mut composed = alg.identity();
            for &e in events {
                let ann = match e {
                    PEvent::Open(Some(l)) => alg.instantiate(open_sym, &[(x, labels[l as usize])]),
                    PEvent::Open(None) => alg.plain(open_sym),
                    PEvent::Close(Some(l)) => {
                        alg.instantiate(close_sym, &[(x, labels[l as usize])])
                    }
                    PEvent::Close(None) => alg.plain(close_sym),
                };
                composed = alg.compose(ann, composed);
            }

            // Simulate each label's view of the event stream on the machine.
            let complete = dfa.complete();
            for (li, &label) in labels.iter().enumerate() {
                let mut state = complete.start().unwrap();
                for &e in events {
                    let sym = match e {
                        PEvent::Open(inst) if inst.is_none() || inst == Some(li as u8) => {
                            Some(open_sym)
                        }
                        PEvent::Close(inst) if inst.is_none() || inst == Some(li as u8) => {
                            Some(close_sym)
                        }
                        _ => None,
                    };
                    if let Some(s) = sym {
                        state = complete.delta(state, s).unwrap();
                    }
                }
                let expected_open = complete.is_accepting(state);
                // Query the composed environment for this label.
                let env = alg.env(composed);
                let key: std::collections::BTreeMap<_, _> = [(x, label)].into_iter().collect();
                let f = env.lookup(&key);
                let got_open = alg.monoid().is_accepting(f);
                prop_assert_eq!(got_open, expected_open, "label l{li}");
            }
            Ok(())
        },
    );
}
