//! Property-based tests for the automata substrate: regex compilation,
//! minimization, closures, transition monoids, and the gen/kill algebra.

use rasc::automata::closure::{prefix_closure, substring_closure, suffix_closure};
use rasc::automata::{Alphabet, Dfa, Monoid, Regex, SymbolId};
use rasc::constraints::algebra::{Algebra, GenKillAlgebra};
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng, Unshrunk};

fn sigma3() -> Alphabet {
    Alphabet::from_names(["a", "b", "c"])
}

/// A random regex AST over a 3-symbol alphabet, with bounded depth.
fn arb_regex(rng: &mut Rng, depth: usize) -> Regex {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        if rng.gen_bool(0.25) {
            return Regex::Epsilon;
        }
        return Regex::Symbol(SymbolId::from_index(rng.gen_range(0..3)));
    }
    match rng.gen_range(0..5) {
        0 => Regex::Concat(
            Box::new(arb_regex(rng, depth - 1)),
            Box::new(arb_regex(rng, depth - 1)),
        ),
        1 => Regex::Alt(
            Box::new(arb_regex(rng, depth - 1)),
            Box::new(arb_regex(rng, depth - 1)),
        ),
        2 => Regex::Star(Box::new(arb_regex(rng, depth - 1))),
        3 => Regex::Opt(Box::new(arb_regex(rng, depth - 1))),
        _ => Regex::Plus(Box::new(arb_regex(rng, depth - 1))),
    }
}

fn arb_word(rng: &mut Rng) -> Vec<SymbolId> {
    (0..rng.gen_range(0..8))
        .map(|_| SymbolId::from_index(rng.gen_range(0..3)))
        .collect()
}

fn arb_words(rng: &mut Rng) -> Vec<Vec<SymbolId>> {
    (0..rng.gen_range(1..10)).map(|_| arb_word(rng)).collect()
}

#[test]
fn nfa_and_minimized_dfa_agree() {
    forall(
        "nfa_and_minimized_dfa_agree",
        Config::cases(128),
        |rng| (Unshrunk(arb_regex(rng, 4)), arb_words(rng)),
        |(Unshrunk(re), words)| {
            let sigma = sigma3();
            let nfa = re.to_nfa(&sigma);
            let dfa = re.compile(&sigma);
            for w in words {
                prop_assert_eq!(nfa.accepts(w), dfa.accepts(w), "word {w:?}");
            }
            Ok(())
        },
    );
}

#[test]
fn minimization_is_idempotent_and_canonical() {
    forall(
        "minimization_is_idempotent_and_canonical",
        Config::cases(128),
        |rng| Unshrunk(arb_regex(rng, 4)),
        |Unshrunk(re)| {
            let sigma = sigma3();
            let m1 = re.compile(&sigma);
            let m2 = m1.minimize();
            prop_assert_eq!(
                m1.len(),
                m2.len(),
                "minimize is idempotent on minimal machines"
            );
            prop_assert!(m1.equivalent(&m2));
            Ok(())
        },
    );
}

#[test]
fn closures_contain_the_right_fragments() {
    forall(
        "closures_contain_the_right_fragments",
        Config::cases(128),
        |rng| (Unshrunk(arb_regex(rng, 4)), arb_word(rng)),
        |(Unshrunk(re), word)| {
            let sigma = sigma3();
            let dfa = re.compile(&sigma);
            if dfa.accepts(word) {
                let pre = prefix_closure(&dfa);
                let suf = suffix_closure(&dfa);
                let sub = substring_closure(&dfa);
                for i in 0..=word.len() {
                    prop_assert!(pre.accepts(&word[..i]), "prefix {:?}", &word[..i]);
                    prop_assert!(suf.accepts(&word[i..]), "suffix {:?}", &word[i..]);
                    for j in i..=word.len() {
                        prop_assert!(sub.accepts(&word[i..j]), "substring {:?}", &word[i..j]);
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn monoid_of_word_matches_machine_run() {
    forall(
        "monoid_of_word_matches_machine_run",
        Config::cases(128),
        |rng| (Unshrunk(arb_regex(rng, 4)), arb_word(rng)),
        |(Unshrunk(re), word)| {
            let sigma = sigma3();
            let dfa = re.compile(&sigma);
            let mut monoid = Monoid::lazy_of_dfa(&dfa);
            let f = monoid.of_word(word);
            prop_assert_eq!(monoid.is_accepting(f), dfa.accepts(word));
            let direct = dfa.run_from(dfa.start().unwrap(), word).unwrap();
            prop_assert_eq!(monoid.forward_class(f), direct);
            Ok(())
        },
    );
}

#[test]
fn monoid_composition_is_associative() {
    forall(
        "monoid_composition_is_associative",
        Config::cases(128),
        |rng| {
            (
                Unshrunk(arb_regex(rng, 4)),
                arb_word(rng),
                arb_word(rng),
                arb_word(rng),
            )
        },
        |(Unshrunk(re), w1, w2, w3)| {
            let sigma = sigma3();
            let dfa = re.compile(&sigma);
            let mut monoid = Monoid::lazy_of_dfa(&dfa);
            let (f1, f2, f3) = (monoid.of_word(w1), monoid.of_word(w2), monoid.of_word(w3));
            let left = {
                let f21 = monoid.compose(f2, f1);
                monoid.compose(f3, f21)
            };
            let right = {
                let f32 = monoid.compose(f3, f2);
                monoid.compose(f32, f1)
            };
            prop_assert_eq!(left, right);
            // And composition tracks concatenation.
            let mut cat = w1.clone();
            cat.extend(w2);
            cat.extend(w3);
            prop_assert_eq!(monoid.of_word(&cat), left);
            Ok(())
        },
    );
}

#[test]
fn product_is_intersection() {
    forall(
        "product_is_intersection",
        Config::cases(128),
        |rng| {
            (
                Unshrunk(arb_regex(rng, 4)),
                Unshrunk(arb_regex(rng, 4)),
                arb_words(rng),
            )
        },
        |(Unshrunk(re1), Unshrunk(re2), words)| {
            let sigma = sigma3();
            let d1 = re1.compile(&sigma);
            let d2 = re2.compile(&sigma);
            let p = d1.product(&d2);
            for w in words {
                prop_assert_eq!(p.accepts(w), d1.accepts(w) && d2.accepts(w), "word {w:?}");
            }
            Ok(())
        },
    );
}

/// Gen/kill words over n facts, as (fact, is_gen) pairs.
fn arb_genkill_word(rng: &mut Rng, n_facts: usize) -> Vec<(u32, bool)> {
    (0..rng.gen_range(0..12))
        .map(|_| (rng.gen_range(0..n_facts) as u32, rng.gen_bool(0.5)))
        .collect()
}

#[test]
fn genkill_algebra_matches_per_fact_one_bit_machines() {
    forall(
        "genkill_algebra_matches_per_fact_one_bit_machines",
        Config::cases(128),
        |rng| arb_genkill_word(rng, 4),
        |word| {
            // The §3.3 claim: the n-bit language is the product of 1-bit
            // machines. The dedicated algebra must agree with running each
            // fact's machine over the word.
            let mut alg = GenKillAlgebra::new(4);
            let mut composed = alg.identity();
            for &(fact, is_gen) in word {
                let t = if is_gen {
                    alg.transfer(1 << fact, 0)
                } else {
                    alg.transfer(0, 1 << fact)
                };
                composed = alg.compose(t, composed);
            }
            for fact in 0..4u32 {
                let mut sigma = Alphabet::new();
                let g = sigma.intern("g");
                let k = sigma.intern("k");
                let machine = Dfa::one_bit(&sigma, g, k);
                // Project the word onto this fact's machine.
                let projected: Vec<SymbolId> = word
                    .iter()
                    .filter(|&&(f, _)| f == fact)
                    .map(|&(_, is_gen)| if is_gen { g } else { k })
                    .collect();
                let expected = machine.accepts(&projected);
                let got = alg.apply(composed, 0) & (1 << fact) != 0;
                prop_assert_eq!(got, expected, "fact {fact}");
            }
            Ok(())
        },
    );
}

#[test]
fn genkill_composition_matches_application() {
    forall(
        "genkill_composition_matches_application",
        Config::cases(128),
        |rng| {
            let masks: Vec<(u64, u64)> = (0..rng.gen_range(1..6))
                .map(|_| (rng.next_u64() % 256, rng.next_u64() % 256))
                .collect();
            (masks, rng.next_u64() % 256)
        },
        |(masks, input)| {
            let mut alg = GenKillAlgebra::new(8);
            let mut composed = alg.identity();
            let mut expected = *input;
            for &(g, k) in masks {
                let t = alg.transfer(g, k);
                expected = alg.apply(t, expected);
                composed = alg.compose(t, composed);
            }
            prop_assert_eq!(alg.apply(composed, *input), expected);
            Ok(())
        },
    );
}
