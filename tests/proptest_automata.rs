//! Property-based tests for the automata substrate: regex compilation,
//! minimization, closures, transition monoids, and the gen/kill algebra.

use proptest::prelude::*;
use rasc::automata::closure::{prefix_closure, substring_closure, suffix_closure};
use rasc::automata::{Alphabet, Dfa, Monoid, Regex, SymbolId};
use rasc::constraints::algebra::{Algebra, GenKillAlgebra};

fn sigma3() -> Alphabet {
    Alphabet::from_names(["a", "b", "c"])
}

/// A random regex AST over a 3-symbol alphabet.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0u32..3).prop_map(|i| Regex::Symbol(SymbolId::from_index(i as usize))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Regex::Star(Box::new(a))),
            inner.clone().prop_map(|a| Regex::Opt(Box::new(a))),
            inner.prop_map(|a| Regex::Plus(Box::new(a))),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<SymbolId>> {
    proptest::collection::vec(
        (0u32..3).prop_map(|i| SymbolId::from_index(i as usize)),
        0..8,
    )
}

proptest! {
    #[test]
    fn nfa_and_minimized_dfa_agree(re in arb_regex(), words in proptest::collection::vec(arb_word(), 1..10)) {
        let sigma = sigma3();
        let nfa = re.to_nfa(&sigma);
        let dfa = re.compile(&sigma);
        for w in words {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn minimization_is_idempotent_and_canonical(re in arb_regex()) {
        let sigma = sigma3();
        let m1 = re.compile(&sigma);
        let m2 = m1.minimize();
        prop_assert_eq!(m1.len(), m2.len(), "minimize is idempotent on minimal machines");
        prop_assert!(m1.equivalent(&m2));
    }

    #[test]
    fn closures_contain_the_right_fragments(re in arb_regex(), word in arb_word()) {
        let sigma = sigma3();
        let dfa = re.compile(&sigma);
        if dfa.accepts(&word) {
            let pre = prefix_closure(&dfa);
            let suf = suffix_closure(&dfa);
            let sub = substring_closure(&dfa);
            for i in 0..=word.len() {
                prop_assert!(pre.accepts(&word[..i]), "prefix {:?}", &word[..i]);
                prop_assert!(suf.accepts(&word[i..]), "suffix {:?}", &word[i..]);
                for j in i..=word.len() {
                    prop_assert!(sub.accepts(&word[i..j]), "substring {:?}", &word[i..j]);
                }
            }
        }
    }

    #[test]
    fn monoid_of_word_matches_machine_run(re in arb_regex(), word in arb_word()) {
        let sigma = sigma3();
        let dfa = re.compile(&sigma);
        let mut monoid = Monoid::lazy_of_dfa(&dfa);
        let f = monoid.of_word(&word);
        prop_assert_eq!(monoid.is_accepting(f), dfa.accepts(&word));
        let direct = dfa.run_from(dfa.start().unwrap(), &word).unwrap();
        prop_assert_eq!(monoid.forward_class(f), direct);
    }

    #[test]
    fn monoid_composition_is_associative(
        re in arb_regex(),
        w1 in arb_word(),
        w2 in arb_word(),
        w3 in arb_word(),
    ) {
        let sigma = sigma3();
        let dfa = re.compile(&sigma);
        let mut monoid = Monoid::lazy_of_dfa(&dfa);
        let (f1, f2, f3) = (monoid.of_word(&w1), monoid.of_word(&w2), monoid.of_word(&w3));
        let left = { let f21 = monoid.compose(f2, f1); monoid.compose(f3, f21) };
        let right = { let f32 = monoid.compose(f3, f2); monoid.compose(f32, f1) };
        prop_assert_eq!(left, right);
        // And composition tracks concatenation.
        let mut cat = w1.clone();
        cat.extend(&w2);
        cat.extend(&w3);
        prop_assert_eq!(monoid.of_word(&cat), left);
    }

    #[test]
    fn product_is_intersection(re1 in arb_regex(), re2 in arb_regex(), words in proptest::collection::vec(arb_word(), 1..10)) {
        let sigma = sigma3();
        let d1 = re1.compile(&sigma);
        let d2 = re2.compile(&sigma);
        let p = d1.product(&d2);
        for w in words {
            prop_assert_eq!(p.accepts(&w), d1.accepts(&w) && d2.accepts(&w), "word {:?}", w);
        }
    }
}

/// Gen/kill words over n facts, as (fact, is_gen) pairs.
fn arb_genkill_word(n_facts: u32) -> impl Strategy<Value = Vec<(u32, bool)>> {
    proptest::collection::vec((0..n_facts, any::<bool>()), 0..12)
}

proptest! {
    #[test]
    fn genkill_algebra_matches_per_fact_one_bit_machines(word in arb_genkill_word(4)) {
        // The §3.3 claim: the n-bit language is the product of 1-bit
        // machines. The dedicated algebra must agree with running each
        // fact's machine over the word.
        let mut alg = GenKillAlgebra::new(4);
        let mut composed = alg.identity();
        for &(fact, is_gen) in &word {
            let t = if is_gen {
                alg.transfer(1 << fact, 0)
            } else {
                alg.transfer(0, 1 << fact)
            };
            composed = alg.compose(t, composed);
        }
        for fact in 0..4u32 {
            let mut sigma = Alphabet::new();
            let g = sigma.intern("g");
            let k = sigma.intern("k");
            let machine = Dfa::one_bit(&sigma, g, k);
            // Project the word onto this fact's machine.
            let projected: Vec<SymbolId> = word
                .iter()
                .filter(|&&(f, _)| f == fact)
                .map(|&(_, is_gen)| if is_gen { g } else { k })
                .collect();
            let expected = machine.accepts(&projected);
            let got = alg.apply(composed, 0) & (1 << fact) != 0;
            prop_assert_eq!(got, expected, "fact {}", fact);
        }
    }

    #[test]
    fn genkill_composition_matches_application(
        masks in proptest::collection::vec((0u64..256, 0u64..256), 1..6),
        input in 0u64..256,
    ) {
        let mut alg = GenKillAlgebra::new(8);
        let mut composed = alg.identity();
        let mut expected = input;
        for &(g, k) in &masks {
            let t = alg.transfer(g, k);
            expected = alg.apply(t, expected);
            composed = alg.compose(t, composed);
        }
        prop_assert_eq!(alg.apply(composed, input), expected);
    }
}
