//! Property tests for the incremental session layer (`rasc-inc`):
//!
//! * **Equivalence** — adding random constraints one at a time through a
//!   [`Session`] (re-draining the worklist after each) must yield exactly
//!   the observable results of a fresh batch solve of the same system,
//!   under every §8 optimization configuration.
//! * **Rollback** — `push_epoch` / add random constraints / `pop_epoch`
//!   must restore every observable query result and the solver statistics
//!   bit-for-bit.

use rasc::automata::{Alphabet, Dfa, SymbolId};
use rasc::constraints::algebra::{Algebra, MonoidAlgebra};
use rasc::constraints::{ConsId, SetExpr, SolverConfig, System, VarId, Variance};
use rasc::Session;
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng};

const N_VARS: usize = 6;

#[derive(Debug, Clone)]
enum RandCon {
    Edge(usize, usize, Option<u8>),
    Const(usize, Option<u8>),
    Wrap(usize, usize), // o(v1) ⊆ v2
    Proj(usize, usize), // o⁻¹(v1) ⊆ v2
    Sink(usize, usize), // v1 ⊆ o(v2)
}

fn arb_sym(rng: &mut Rng) -> Option<u8> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as u8)
    } else {
        None
    }
}

fn arb_con(rng: &mut Rng) -> RandCon {
    let v = |rng: &mut Rng| rng.gen_range(0..N_VARS);
    match rng.gen_range(0..12) {
        0..=4 => {
            let (a, b) = (v(rng), v(rng));
            let s = arb_sym(rng);
            RandCon::Edge(a, b, s)
        }
        5 | 6 => {
            let a = v(rng);
            let s = arb_sym(rng);
            RandCon::Const(a, s)
        }
        7 | 8 => RandCon::Wrap(v(rng), v(rng)),
        9 | 10 => RandCon::Proj(v(rng), v(rng)),
        _ => RandCon::Sink(v(rng), v(rng)),
    }
}

fn arb_cons(rng: &mut Rng, lo: usize, hi: usize) -> Vec<RandCon> {
    (0..rng.gen_range(lo..hi)).map(|_| arb_con(rng)).collect()
}

fn machine() -> (Alphabet, Dfa) {
    // Odd number of `a`, ending in `b` — 4-state minimal machine.
    let sigma = Alphabet::from_names(["a", "b"]);
    let re = rasc::automata::Regex::parse("b* a (b | a b* a)* b+", &sigma).unwrap();
    let dfa = re.compile(&sigma);
    (sigma, dfa)
}

struct Shape {
    vars: Vec<VarId>,
    probe: ConsId,
    o: ConsId,
}

fn declare(sys: &mut System<MonoidAlgebra>) -> Shape {
    let vars = (0..N_VARS).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    Shape { vars, probe, o }
}

/// Adds one random constraint directly to a system (no solve).
fn apply(sys: &mut System<MonoidAlgebra>, shape: &Shape, syms: &[SymbolId], c: &RandCon) {
    let ann = |sys: &mut System<MonoidAlgebra>, s: &Option<u8>| match s {
        Some(i) => sys.algebra_mut().word(&[syms[*i as usize]]),
        None => sys.algebra().identity(),
    };
    match *c {
        RandCon::Edge(a, b, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(SetExpr::var(shape.vars[a]), SetExpr::var(shape.vars[b]), w)
                .unwrap();
        }
        RandCon::Const(v, ref s) => {
            let w = ann(sys, s);
            sys.add_ann(
                SetExpr::cons(shape.probe, []),
                SetExpr::var(shape.vars[v]),
                w,
            )
            .unwrap();
        }
        RandCon::Wrap(a, b) => {
            sys.add(
                SetExpr::cons_vars(shape.o, [shape.vars[a]]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Proj(a, b) => {
            sys.add(
                SetExpr::proj(shape.o, 0, shape.vars[a]),
                SetExpr::var(shape.vars[b]),
            )
            .unwrap();
        }
        RandCon::Sink(a, b) => {
            sys.add(
                SetExpr::var(shape.vars[a]),
                SetExpr::cons_vars(shape.o, [shape.vars[b]]),
            )
            .unwrap();
        }
    }
}

/// Per-variable observation through the *session* query layer: sorted
/// probe occurrence annotations (rendered), emptiness, `o`-acceptance,
/// and partially matched occurrences — plus global consistency.
type Signature = (Vec<(Vec<String>, bool, bool, Vec<String>)>, bool);

fn session_signature(s: &mut Session<MonoidAlgebra>, shape: &Shape) -> Signature {
    let per_var = shape
        .vars
        .iter()
        .map(|&v| {
            let mut occ: Vec<String> = s
                .occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            occ.sort();
            let nonempty = s.nonempty(v);
            let o_reaches = s.occurs_accepting(v, shape.o);
            let mut pn: Vec<String> = s
                .pn_occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| s.system().algebra().describe(a))
                .collect();
            pn.sort();
            (occ, nonempty, o_reaches, pn)
        })
        .collect();
    (per_var, s.is_consistent())
}

/// The same observation computed directly on a solved system.
fn system_signature(sys: &mut System<MonoidAlgebra>, shape: &Shape) -> Signature {
    let per_var = shape
        .vars
        .iter()
        .map(|&v| {
            let mut occ: Vec<String> = sys
                .occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| sys.algebra().describe(a))
                .collect();
            occ.sort();
            let nonempty = sys.nonempty(v);
            let o_reaches = sys.occurs_accepting(v, shape.o);
            let mut pn: Vec<String> = sys
                .pn_occurrence_annotations(v, shape.probe)
                .into_iter()
                .map(|a| sys.algebra().describe(a))
                .collect();
            pn.sort();
            (occ, nonempty, o_reaches, pn)
        })
        .collect();
    (per_var, sys.is_consistent())
}

#[test]
fn incremental_session_matches_fresh_batch_solve() {
    forall(
        "incremental_session_matches_fresh_batch_solve",
        Config::cases(96),
        |rng| arb_cons(rng, 1, 24),
        |cons| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let configs = [
                SolverConfig {
                    cycle_elimination: true,
                    projection_merging: true,
                    ..SolverConfig::default()
                },
                SolverConfig {
                    cycle_elimination: false,
                    projection_merging: false,
                    ..SolverConfig::default()
                },
            ];
            for config in configs {
                // Batch: add everything, solve once.
                let mut batch = System::with_config(MonoidAlgebra::new(&dfa), config);
                let shape = declare(&mut batch);
                for c in cons {
                    apply(&mut batch, &shape, &syms, c);
                }
                batch.solve();
                let want = system_signature(&mut batch, &shape);

                // Incremental: one constraint per `Session::add`, each
                // re-draining the worklist before the next.
                let mut sess = Session::with_config(MonoidAlgebra::new(&dfa), config);
                let shape_s = declare(sess.system_mut());
                for c in cons {
                    apply(sess.system_mut(), &shape_s, &syms, c);
                    sess.system_mut().solve();
                }
                let got = session_signature(&mut sess, &shape_s);
                prop_assert_eq!(&got, &want, "config {config:?} diverged incrementally");

                // Asking again must be answered from cache, identically.
                let again = session_signature(&mut sess, &shape_s);
                prop_assert_eq!(&again, &want, "cached answers diverged");
                prop_assert!(sess.cache_stats().hits > 0, "second pass should hit");
            }
            Ok(())
        },
    );
}

#[test]
fn pop_epoch_restores_all_observables() {
    forall(
        "pop_epoch_restores_all_observables",
        Config::cases(96),
        |rng| (arb_cons(rng, 0, 12), arb_cons(rng, 1, 8)),
        |(base, extra)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let mut sess = Session::new(MonoidAlgebra::new(&dfa));
            let shape = declare(sess.system_mut());
            for c in base {
                apply(sess.system_mut(), &shape, &syms, c);
                sess.system_mut().solve();
            }
            let before = session_signature(&mut sess, &shape);
            // The algebra's hash-cons table is a monotone memo and is
            // deliberately not rolled back (ids are canonical by content),
            // so its size is not part of the restored-state contract.
            let mut before_stats = sess.stats();
            before_stats.annotations = 0;

            sess.push_epoch();
            for c in extra {
                apply(sess.system_mut(), &shape, &syms, c);
                sess.system_mut().solve();
            }
            // Mid-epoch queries populate the cache with stamped entries
            // that must not leak back after rollback.
            let _ = session_signature(&mut sess, &shape);
            prop_assert_eq!(sess.epoch_depth(), 1);
            prop_assert!(sess.pop_epoch());

            let after = session_signature(&mut sess, &shape);
            prop_assert_eq!(&after, &before, "rollback changed an observable");
            let mut after_stats = sess.stats();
            after_stats.annotations = 0;
            prop_assert_eq!(after_stats, before_stats, "rollback changed stats");
            prop_assert_eq!(sess.epoch_depth(), 0);
            Ok(())
        },
    );
}

#[test]
fn nested_epochs_unwind_in_order() {
    forall(
        "nested_epochs_unwind_in_order",
        Config::cases(64),
        |rng| {
            (
                arb_cons(rng, 0, 8),
                arb_cons(rng, 1, 6),
                arb_cons(rng, 1, 6),
            )
        },
        |(base, mid, top)| {
            let (sigma, dfa) = machine();
            let syms: Vec<SymbolId> = sigma.symbols().collect();
            let mut sess = Session::new(MonoidAlgebra::new(&dfa));
            let shape = declare(sess.system_mut());
            for c in base {
                apply(sess.system_mut(), &shape, &syms, c);
                sess.system_mut().solve();
            }
            let sig_base = session_signature(&mut sess, &shape);

            sess.push_epoch();
            for c in mid {
                apply(sess.system_mut(), &shape, &syms, c);
                sess.system_mut().solve();
            }
            let sig_mid = session_signature(&mut sess, &shape);

            sess.push_epoch();
            for c in top {
                apply(sess.system_mut(), &shape, &syms, c);
                sess.system_mut().solve();
            }
            prop_assert_eq!(sess.epoch_depth(), 2);

            prop_assert!(sess.pop_epoch());
            let back_mid = session_signature(&mut sess, &shape);
            prop_assert_eq!(&back_mid, &sig_mid, "inner rollback");

            prop_assert!(sess.pop_epoch());
            let back_base = session_signature(&mut sess, &shape);
            prop_assert_eq!(&back_base, &sig_base, "outer rollback");
            prop_assert!(!sess.pop_epoch(), "no epoch left");
            Ok(())
        },
    );
}
