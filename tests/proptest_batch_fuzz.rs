//! Hostile-input fuzzing of the batch protocol: 10k adversarial lines —
//! garbage bytes, punctuation soup, deep nesting, truncated and
//! type-mangled commands — must each produce exactly one well-formed JSON
//! response (or none, for blank/comment lines), never a panic, and never
//! kill the stream: the engine must still answer a valid command at the
//! end.

use rasc::automata::{Alphabet, Regex};
use rasc::inc::json::Json;
use rasc::inc::BatchEngine;
use rasc_devtools::hostile::hostile_line;
use rasc_devtools::Rng;

const N_LINES: usize = 10_000;

fn engine() -> BatchEngine {
    let sigma = Alphabet::from_names(["g", "k"]);
    let dfa = Regex::parse("g (k g)*", &sigma).unwrap().compile(&sigma);
    BatchEngine::new(sigma, &dfa)
}

#[test]
fn ten_thousand_hostile_lines_never_kill_the_stream() {
    let mut engine = engine();
    let mut rng = Rng::new(0xFEED_FACE);
    let mut responses = 0usize;
    for i in 0..N_LINES {
        // Mix in blanks and comments, which must produce no response.
        let line = match i % 97 {
            0 => "   ".to_owned(),
            1 => "# comment".to_owned(),
            _ => hostile_line(&mut rng),
        };
        let expected_silent = rasc_devtools::hostile::is_silent(&line);
        match engine.handle_line(&line) {
            None => assert!(expected_silent, "line {i} swallowed: {line:?}"),
            Some(resp) => {
                assert!(!expected_silent, "line {i} answered a comment: {line:?}");
                let parsed = Json::parse(&resp);
                assert!(
                    parsed.is_ok(),
                    "line {i}: response is not well-formed JSON: {resp:?} (input {line:?})"
                );
                responses += 1;
            }
        }
    }
    assert!(responses > N_LINES / 2, "only {responses} responses");

    // The stream survived: a valid command still gets an `ok` answer.
    let resp = engine
        .handle_line(r#"{"cmd":"stats"}"#)
        .expect("stats answered");
    let json = Json::parse(&resp).expect("well-formed");
    assert!(json.get("ok").is_some(), "engine wedged after fuzz: {resp}");
}
