//! Hostile-input fuzzing of the batch protocol: 10k adversarial lines —
//! garbage bytes, punctuation soup, deep nesting, truncated and
//! type-mangled commands — must each produce exactly one well-formed JSON
//! response (or none, for blank/comment lines), never a panic, and never
//! kill the stream: the engine must still answer a valid command at the
//! end.
//!
//! Plus a property pin on per-request accounting: the deltas
//! [`RequestStats::delta_since`] reports must stay saturating across
//! epoch rollback — a `pop` can move the engine's cumulative counters
//! *backwards* past a request boundary, and the delta must then clamp to
//! zero rather than underflow.

use rasc::automata::{Alphabet, Regex};
use rasc::inc::json::Json;
use rasc::inc::{BatchEngine, RequestStats};
use rasc_devtools::hostile::hostile_line;
use rasc_devtools::{forall, prop_assert, prop_assert_eq, Config, Rng};

const N_LINES: usize = 10_000;

fn engine() -> BatchEngine {
    let sigma = Alphabet::from_names(["g", "k"]);
    let dfa = Regex::parse("g (k g)*", &sigma).unwrap().compile(&sigma);
    BatchEngine::new(sigma, &dfa)
}

#[test]
fn ten_thousand_hostile_lines_never_kill_the_stream() {
    let mut engine = engine();
    let mut rng = Rng::new(0xFEED_FACE);
    let mut responses = 0usize;
    for i in 0..N_LINES {
        // Mix in blanks and comments, which must produce no response.
        let line = match i % 97 {
            0 => "   ".to_owned(),
            1 => "# comment".to_owned(),
            _ => hostile_line(&mut rng),
        };
        let expected_silent = rasc_devtools::hostile::is_silent(&line);
        match engine.handle_line(&line) {
            None => assert!(expected_silent, "line {i} swallowed: {line:?}"),
            Some(resp) => {
                assert!(!expected_silent, "line {i} answered a comment: {line:?}");
                let parsed = Json::parse(&resp);
                assert!(
                    parsed.is_ok(),
                    "line {i}: response is not well-formed JSON: {resp:?} (input {line:?})"
                );
                responses += 1;
            }
        }
    }
    assert!(responses > N_LINES / 2, "only {responses} responses");

    // The stream survived: a valid command still gets an `ok` answer.
    let resp = engine
        .handle_line(r#"{"cmd":"stats"}"#)
        .expect("stats answered");
    let json = Json::parse(&resp).expect("well-formed");
    assert!(json.get("ok").is_some(), "engine wedged after fuzz: {resp}");
}

/// One step of a random protocol script for the delta-accounting pin.
#[derive(Debug, Clone)]
enum Step {
    /// Add an annotated edge between two of a small pool of variables.
    Add(usize, usize),
    /// Open a rollback epoch.
    Push,
    /// Pop (and roll back) the innermost epoch, if any is open.
    Pop,
    /// End the current request and start a new one.
    Boundary,
}

fn arb_step(rng: &mut Rng) -> Step {
    match rng.gen_range(0..10) {
        0..=4 => Step::Add(rng.gen_range(0..4), rng.gen_range(0..4)),
        5 | 6 => Step::Push,
        7 | 8 => Step::Pop,
        _ => Step::Boundary,
    }
}

/// `delta_since` must behave like per-field saturating subtraction with
/// an `epoch_depth` passthrough — in particular it must never underflow
/// when a rollback moved a cumulative counter backwards past the request
/// boundary.
fn check_delta(before: &RequestStats, after: &RequestStats) -> Result<(), String> {
    let d = after.delta_since(before);
    for (name, base, now, got) in [
        (
            "fuel_spent",
            before.fuel_spent,
            after.fuel_spent,
            d.fuel_spent,
        ),
        (
            "facts_processed",
            before.facts_processed,
            after.facts_processed,
            d.facts_processed,
        ),
        (
            "cache_hits",
            before.cache_hits,
            after.cache_hits,
            d.cache_hits,
        ),
        (
            "cache_misses",
            before.cache_misses,
            after.cache_misses,
            d.cache_misses,
        ),
    ] {
        prop_assert!(
            got <= now,
            "{name}: delta {got} exceeds the request-end counter {now}"
        );
        if now >= base {
            prop_assert_eq!(
                got,
                now - base,
                "{name}: forward progress must report the exact difference"
            );
        } else {
            prop_assert_eq!(
                got,
                0u64,
                "{name}: a rollback past the request boundary must clamp to zero"
            );
        }
    }
    prop_assert_eq!(
        d.epoch_depth,
        after.epoch_depth,
        "epoch_depth is a point-in-time passthrough, not a difference"
    );
    Ok(())
}

#[test]
fn per_request_deltas_saturate_across_epoch_rollback() {
    forall(
        "per_request_deltas_saturate_across_epoch_rollback",
        Config::cases(64),
        |rng| (0..rng.gen_range(4..40)).map(|_| arb_step(rng)).collect(),
        |script: &Vec<Step>| {
            let mut e = engine();
            assert!(e
                .handle_line(r#"{"cmd":"declare","cons":"pc"}"#)
                .expect("declare answered")
                .contains(r#""ok":"declare""#));
            e.begin_request(None);
            let mut before = e.request_stats();
            let mut rollbacks = 0usize;
            for step in script {
                match step {
                    Step::Add(i, j) => {
                        // Growing chains keep the solver spending fuel;
                        // responses may be ok or a typed clash, both fine.
                        let line = if i == j {
                            format!(r#"{{"cmd":"add","lhs":"pc","rhs":"V{i}","ann":["g"]}}"#)
                        } else {
                            format!(r#"{{"cmd":"add","lhs":"V{i}","rhs":"V{j}","ann":["g"]}}"#)
                        };
                        e.handle_line(&line).expect("add answered");
                    }
                    Step::Push => {
                        e.handle_line(r#"{"cmd":"push"}"#).expect("push answered");
                    }
                    Step::Pop => {
                        let r = e.handle_line(r#"{"cmd":"pop"}"#).expect("pop answered");
                        if r.contains(r#""ok":"pop""#) {
                            rollbacks += 1;
                        }
                    }
                    Step::Boundary => {
                        let after = e.request_stats();
                        check_delta(&before, &after)?;
                        e.begin_request(None);
                        before = e.request_stats();
                    }
                }
            }
            let after = e.request_stats();
            check_delta(&before, &after)?;
            // The generator must actually exercise rollback in a healthy
            // fraction of cases for the saturation arm to mean anything.
            let _ = rollbacks;
            Ok(())
        },
    );
}
