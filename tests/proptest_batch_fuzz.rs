//! Hostile-input fuzzing of the batch protocol: 10k adversarial lines —
//! garbage bytes, punctuation soup, deep nesting, truncated and
//! type-mangled commands — must each produce exactly one well-formed JSON
//! response (or none, for blank/comment lines), never a panic, and never
//! kill the stream: the engine must still answer a valid command at the
//! end.

use rasc::automata::{Alphabet, Regex};
use rasc::inc::json::Json;
use rasc::inc::BatchEngine;
use rasc_devtools::Rng;

const N_LINES: usize = 10_000;

fn engine() -> BatchEngine {
    let sigma = Alphabet::from_names(["g", "k"]);
    let dfa = Regex::parse("g (k g)*", &sigma).unwrap().compile(&sigma);
    BatchEngine::new(sigma, &dfa)
}

/// Templates that are valid protocol lines before mutation.
const TEMPLATES: &[&str] = &[
    r#"{"cmd":"declare","var":"V1"}"#,
    r#"{"cmd":"declare","con":"c","arity":1}"#,
    r#"{"cmd":"add","lhs":"c","rhs":"V1","ann":["g"]}"#,
    r#"{"cmd":"add","lhs":"V1","rhs":"V2"}"#,
    r#"{"cmd":"query","what":"occurrences","var":"V1","con":"c"}"#,
    r#"{"cmd":"push"}"#,
    r#"{"cmd":"pop"}"#,
    r#"{"cmd":"stats"}"#,
    r#"{"cmd":"limits","max_steps":3}"#,
    r#"{"cmd":"limits"}"#,
];

const GARBAGE_CHARS: &[char] = &[
    '{', '}', '[', ']', '"', ':', ',', '\\', 'a', 'V', '0', '9', '-', '.', 'e', 'n', 't', 'f', ' ',
    '\t', 'é', '∆', '\u{7f}', '\'', '/',
];

fn hostile_line(rng: &mut Rng) -> String {
    match rng.gen_range(0..8) {
        // Punctuation/garbage soup.
        0 | 1 => (0..rng.gen_range(0..60))
            .map(|_| *rng.choose(GARBAGE_CHARS))
            .collect(),
        // Deep nesting (would be a stack overflow without json's depth cap).
        2 => {
            let open = *rng.choose(&['[', '{']);
            let mut s: String = std::iter::repeat_n(open, rng.gen_range(1..600)).collect();
            if open == '{' {
                s = s.replace('{', "{\"a\":");
                s.push('1');
            }
            s
        }
        // Truncated valid command.
        3 | 4 => {
            let t = rng.choose(TEMPLATES);
            let cut = rng.gen_range(0..t.len());
            t.chars().take(cut).collect()
        }
        // Valid command with one random byte substituted.
        5 | 6 => {
            let t: Vec<char> = rng.choose(TEMPLATES).chars().collect();
            let i = rng.gen_range(0..t.len());
            let mut s = String::new();
            for (j, c) in t.iter().enumerate() {
                s.push(if j == i {
                    *rng.choose(GARBAGE_CHARS)
                } else {
                    *c
                });
            }
            s
        }
        // Valid JSON, hostile shape: wrong types, unknown commands.
        _ => match rng.gen_range(0..5) {
            0 => r#"{"cmd":5}"#.to_owned(),
            1 => r#"{"cmd":"add","lhs":{},"rhs":[]}"#.to_owned(),
            2 => format!(r#"{{"cmd":"{}"}}"#, "x".repeat(rng.gen_range(1..40))),
            3 => r#"{"cmd":"limits","max_steps":-1}"#.to_owned(),
            _ => format!(r#"{{"cmd":"declare","var":"{}"}}"#, "\\u0000"),
        },
    }
}

#[test]
fn ten_thousand_hostile_lines_never_kill_the_stream() {
    let mut engine = engine();
    let mut rng = Rng::new(0xFEED_FACE);
    let mut responses = 0usize;
    for i in 0..N_LINES {
        // Mix in blanks and comments, which must produce no response.
        let line = match i % 97 {
            0 => "   ".to_owned(),
            1 => "# comment".to_owned(),
            _ => hostile_line(&mut rng),
        };
        let expected_silent = {
            let t = line.trim();
            t.is_empty() || t.starts_with('#')
        };
        match engine.handle_line(&line) {
            None => assert!(expected_silent, "line {i} swallowed: {line:?}"),
            Some(resp) => {
                assert!(!expected_silent, "line {i} answered a comment: {line:?}");
                let parsed = Json::parse(&resp);
                assert!(
                    parsed.is_ok(),
                    "line {i}: response is not well-formed JSON: {resp:?} (input {line:?})"
                );
                responses += 1;
            }
        }
    }
    assert!(responses > N_LINES / 2, "only {responses} responses");

    // The stream survived: a valid command still gets an `ok` answer.
    let resp = engine
        .handle_line(r#"{"cmd":"stats"}"#)
        .expect("stats answered");
    let json = Json::parse(&resp).expect("well-formed");
    assert!(json.get("ok").is_some(), "engine wedged after fuzz: {resp}");
}
